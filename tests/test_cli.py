"""Tests for the repro-paper command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gcc", "drowsy"])
        assert args.l2 == 11
        assert args.temp == 110.0
        assert args.interval == 4096
        assert not args.adaptive

    def test_figure_ops_flag(self):
        args = build_parser().parse_args(["figure", "3_4", "--ops", "500"])
        assert args.ops == 500


class TestExecFlagValidation:
    def test_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(["figure", "3_4", "-j", "0"])
        assert err.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_negative_jobs(self, capsys):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(["reproduce", "-j", "-3"])
        assert err.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_non_integer_jobs(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "gcc", "drowsy", "-j", "two"])
        assert "expected an integer" in capsys.readouterr().err

    def test_rejects_zero_timeout(self, capsys):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(["reproduce", "--timeout", "0"])
        assert err.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_rejects_negative_timeout(self, capsys):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(["figure", "3_4", "--timeout", "-1.5"])
        assert err.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_rejects_non_numeric_timeout(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--timeout", "soon"])
        assert "expected a number" in capsys.readouterr().err

    def test_accepts_valid_flags(self):
        args = build_parser().parse_args(
            ["reproduce", "-j", "4", "--timeout", "120.5"]
        )
        assert args.jobs == 4
        assert args.timeout == 120.5

    def test_timeout_defaults_to_none(self):
        args = build_parser().parse_args(["figure", "3_4"])
        assert args.timeout is None


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "settling times" in out
        assert "80-RUU, 40-LSQ" in out

    def test_run_produces_metrics(self, capsys):
        code = main(["run", "gcc", "drowsy", "--ops", "2000", "--l2", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "net savings" in out
        assert "performance loss" in out
        assert "gcc / drowsy on l1d @ L2=5" in out

    def test_run_unknown_benchmark(self, capsys):
        assert main(["run", "nonesuch", "drowsy"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_unknown_technique(self):
        with pytest.raises(KeyError):
            main(["run", "gcc", "quantum"])

    def test_figure_unknown_name(self, capsys):
        assert main(["figure", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_small(self, capsys):
        code = main(["figure", "3_4", "--ops", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out
        assert "Figures 3/4" in out

    def test_sweep_small(self, capsys):
        code = main(["sweep", "gcc", "gated-vss", "--ops", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best interval" in out
        assert "decay-interval sweep" in out


class TestPowerFlag:
    def test_run_power_breakdown(self, capsys):
        from repro.cli import main

        code = main(["run", "gcc", "drowsy", "--ops", "2000", "--power"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamic power breakdown" in out
        assert "l1_dcache" in out
        assert "clock" in out


class TestReproduceAndValidateCommands:
    def test_quick_reproduce_subset(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "res"
        code = main(
            ["reproduce", "--out", str(out), "--quick",
             "--benchmarks", "gcc,gzip"]
        )
        assert code == 0
        assert (out / "SUMMARY.txt").exists()
        assert (out / "fig03_04_l2_5.json").exists()

    def test_validate_command_on_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["validate", str(tmp_path / "nowhere")]) == 2
        assert "missing artefact" in capsys.readouterr().err


class TestTraceAndStatsCommands:
    def test_trace_and_stats_on_fresh_campaign(self, tmp_path, capsys):
        """Acceptance: reproduce writes an event log that trace/stats can
        browse, with per-run events and a per-phase time breakdown."""
        from repro.cli import main

        out = tmp_path / "res"
        assert main(
            ["reproduce", "--out", str(out), "--quick",
             "--benchmarks", "gcc"]
        ) == 0
        assert (out / "events.jsonl").exists()
        capsys.readouterr()

        assert main(["trace", str(out)]) == 0
        trace_out = capsys.readouterr().out
        assert "run_finished" in trace_out
        assert "per-phase breakdown" in trace_out
        assert "fig12_13_best_interval" in trace_out

        assert main(["stats", str(out)]) == 0
        stats_out = capsys.readouterr().out
        assert "runs executed" in stats_out
        assert "cache hits" in stats_out
        assert "timing spans" in stats_out
        assert "pipeline.runs" in stats_out

        # The campaign's terminal event landed in the log ...
        assert "campaign_finished" in trace_out
        # ... and the metrics registry snapshotted beside it.
        prom = out / "metrics.prom"
        assert prom.exists()
        assert "repro_runs_total" in prom.read_text()
        metrics_payload = json.loads((out / "metrics.json").read_text())
        assert any(
            m["name"] == "repro_runs_total"
            for m in metrics_payload["metrics"]
        )

        # One aggregation path, machine-readable tense.
        assert main(["stats", str(out), "--format", "json"]) == 0
        stats_json = json.loads(capsys.readouterr().out)
        assert stats_json["runs_finished"] >= 1
        assert stats_json["phases"]

        # A post-hoc watch frame sees the terminal event as "done".
        assert main(["watch", str(out), "--once", "--json"]) == 0
        watch_payload = json.loads(capsys.readouterr().out)
        assert watch_payload["status"] == "done"
        assert watch_payload["in_flight"] == []
        assert watch_payload["finished"]["status"] == "ok"

        # The live page renders statically once the campaign is over.
        assert main(["report", str(out), "--live", "--once"]) == 0
        capsys.readouterr()
        live = out / "live.html"
        assert live.exists()
        page = live.read_text()
        assert "campaign finished" in page
        assert "http-equiv" not in page

    def test_trace_on_missing_log(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", str(tmp_path / "nowhere")]) == 2
        assert "no event log" in capsys.readouterr().err

    def test_stats_on_missing_log(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path)]) == 2
        assert "no event log" in capsys.readouterr().err

    def test_reproduce_no_obs_skips_log(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "res"
        assert main(
            ["reproduce", "--out", str(out), "--quick",
             "--benchmarks", "gcc", "--no-obs"]
        ) == 0
        assert not (out / "events.jsonl").exists()


class TestEngineFlag:
    def test_fast_engine_run(self, capsys):
        from repro.cli import main

        code = main(["run", "gcc", "drowsy", "--ops", "2000",
                     "--engine", "fast"])
        assert code == 0
        assert "net savings" in capsys.readouterr().out

    def test_surrogate_engine_run(self, capsys):
        from repro.cli import main

        # Default ops/seed: served straight from the committed calibration
        # (no simulation), so this also proves the artifact is loadable.
        code = main(["run", "gcc", "drowsy", "--engine", "surrogate"])
        assert code == 0
        assert "net savings" in capsys.readouterr().out

    def test_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(
                ["sweep", "gcc", "drowsy", "--engine", "warp"]
            )
        assert err.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_sweep_engine_choices_cover_all_tiers(self):
        for engine in ("ooo", "fast", "surrogate"):
            args = build_parser().parse_args(
                ["sweep", "gcc", "drowsy", "--engine", engine]
            )
            assert args.engine == engine


class TestSurrogateCli:
    def test_error_budget_requires_surrogate_engine(self, capsys):
        from repro.cli import main

        code = main(["sweep", "gcc", "drowsy", "--error-budget", "1.0"])
        assert code == 2
        assert "surrogate" in capsys.readouterr().err

    def test_error_budget_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(
                ["sweep", "gcc", "drowsy", "--engine", "surrogate",
                 "--error-budget", "0"]
            )
        assert err.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_surrogate_sweep_reports_serving(self, capsys):
        from repro.cli import main

        # Anchor-only grid at the committed configuration: every point is
        # served; the one spot-check is the only simulation that runs.
        code = main(
            ["sweep", "gcc", "drowsy", "--engine", "surrogate",
             "--intervals", "1024,4096"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best interval" in out
        assert "points served" in out
        assert "spot-check" in out

    def test_surrogate_info_reads_committed_artifact(self, capsys):
        from repro.cli import main

        assert main(["surrogate", "info"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out
        assert "gcc/drowsy" in out
        assert "envelope" in out

    def test_surrogate_info_missing_artifact(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["surrogate", "info", str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_surrogate_calibrate_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.cpu.surrogate import SurrogateModel

        out_path = tmp_path / "cal.json"
        code = main(
            ["surrogate", "calibrate", "--benchmarks", "gcc",
             "--techniques", "drowsy", "--intervals", "1024,2048",
             "--l2s", "5,8", "--ops", "1000", "--out", str(out_path)]
        )
        assert code == 0
        assert "artifact written" in capsys.readouterr().out
        model = SurrogateModel.load(out_path)
        assert model.covers("gcc", "drowsy")
        assert model.config.n_ops == 1000

    def test_surrogate_calibrate_unknown_technique(self, capsys):
        from repro.cli import main

        code = main(
            ["surrogate", "calibrate", "--benchmarks", "gcc",
             "--techniques", "quantum"]
        )
        assert code == 2
        assert "unknown technique" in capsys.readouterr().err

    def test_surrogate_calibrate_unknown_benchmark(self, capsys):
        from repro.cli import main

        code = main(
            ["surrogate", "calibrate", "--benchmarks", "nonesuch",
             "--techniques", "drowsy"]
        )
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err
