"""Tests for the repro-paper command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gcc", "drowsy"])
        assert args.l2 == 11
        assert args.temp == 110.0
        assert args.interval == 4096
        assert not args.adaptive

    def test_figure_ops_flag(self):
        args = build_parser().parse_args(["figure", "3_4", "--ops", "500"])
        assert args.ops == 500


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "settling times" in out
        assert "80-RUU, 40-LSQ" in out

    def test_run_produces_metrics(self, capsys):
        code = main(["run", "gcc", "drowsy", "--ops", "2000", "--l2", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "net savings" in out
        assert "performance loss" in out
        assert "gcc / drowsy on l1d @ L2=5" in out

    def test_run_unknown_benchmark(self, capsys):
        assert main(["run", "nonesuch", "drowsy"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_unknown_technique(self):
        with pytest.raises(KeyError):
            main(["run", "gcc", "quantum"])

    def test_figure_unknown_name(self, capsys):
        assert main(["figure", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_small(self, capsys):
        code = main(["figure", "3_4", "--ops", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out
        assert "Figures 3/4" in out

    def test_sweep_small(self, capsys):
        code = main(["sweep", "gcc", "gated-vss", "--ops", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best interval" in out
        assert "decay-interval sweep" in out


class TestPowerFlag:
    def test_run_power_breakdown(self, capsys):
        from repro.cli import main

        code = main(["run", "gcc", "drowsy", "--ops", "2000", "--power"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamic power breakdown" in out
        assert "l1_dcache" in out
        assert "clock" in out


class TestReproduceAndValidateCommands:
    def test_quick_reproduce_subset(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "res"
        code = main(
            ["reproduce", "--out", str(out), "--quick",
             "--benchmarks", "gcc,gzip"]
        )
        assert code == 0
        assert (out / "SUMMARY.txt").exists()
        assert (out / "fig03_04_l2_5.json").exists()

    def test_validate_command_on_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["validate", str(tmp_path / "nowhere")]) == 2
        assert "missing artefact" in capsys.readouterr().err


class TestEngineFlag:
    def test_fast_engine_run(self, capsys):
        from repro.cli import main

        code = main(["run", "gcc", "drowsy", "--ops", "2000",
                     "--engine", "fast"])
        assert code == 0
        assert "net savings" in capsys.readouterr().out
