"""Tests for the net-savings energy accounting (paper Sections 2.3/5.1)."""

from __future__ import annotations

import pytest

from repro.leakage.structures import CacheLeakageModel, L1D_GEOMETRY
from repro.leakctl.base import drowsy_technique, gated_vss_technique
from repro.leakctl.controlled import StandbyStats
from repro.leakctl.energy import (
    EVENT_TIME_SCALE,
    NetSavingsResult,
    baseline_leakage_energy,
    technique_leakage_energy,
    uncontrolled_leakage_power,
)

FREQ = 5.6e9


@pytest.fixture(scope="module")
def model(node70, hot_temp_k):
    return CacheLeakageModel(
        geometry=L1D_GEOMETRY, node=node70, vdd=0.9, temp_k=hot_temp_k
    )


def make_result(**overrides) -> NetSavingsResult:
    defaults = dict(
        benchmark="x",
        technique="drowsy",
        decay_interval=4096,
        l2_latency=11,
        temp_c=110.0,
        baseline_cycles=10_000,
        technique_cycles=10_000,
        leak_baseline_j=1.0e-6,
        leak_technique_j=0.4e-6,
        dyn_baseline_j=10.0e-6,
        dyn_technique_j=10.0e-6,
        clock_baseline_j=4.0e-6,
        clock_technique_j=4.0e-6,
        turnoff_ratio=0.5,
        induced_misses=0,
        slow_hits=0,
        true_misses=0,
        accesses=0,
        uncontrolled_power_w=0.0,
        frequency_hz=FREQ,
    )
    defaults.update(overrides)
    return NetSavingsResult(**defaults)


class TestLeakageEnergies:
    def test_baseline_energy_formula(self, model):
        e = baseline_leakage_energy(model, 10_000, FREQ)
        assert e == pytest.approx(
            model.total_power_all_active() * 10_000 / FREQ
        )

    def test_technique_energy_all_active_equals_baseline(self, model):
        """Zero standby cycles: the technique integral must equal the
        baseline's for equal cycle counts."""
        stats = StandbyStats(standby_line_cycles=0.0, total_cycles=10_000)
        e_tech = technique_leakage_energy(model, drowsy_technique(), stats, FREQ)
        e_base = baseline_leakage_energy(model, 10_000, FREQ)
        assert e_tech == pytest.approx(e_base, rel=1e-9)

    def test_full_standby_floor(self, model):
        """Everything asleep: only residual + edge logic remain."""
        n = model.geometry.n_lines
        stats = StandbyStats(
            standby_line_cycles=float(n * 10_000), total_cycles=10_000
        )
        e_gated = technique_leakage_energy(model, gated_vss_technique(), stats, FREQ)
        e_base = baseline_leakage_energy(model, 10_000, FREQ)
        assert e_gated < 0.05 * e_base + model.edge_logic_power * 10_000 / FREQ

    def test_gated_integral_below_drowsy_for_same_stats(self, model):
        n = model.geometry.n_lines
        stats = StandbyStats(
            standby_line_cycles=float(n * 5_000), total_cycles=10_000
        )
        e_drowsy = technique_leakage_energy(model, drowsy_technique(), stats, FREQ)
        e_gated = technique_leakage_energy(model, gated_vss_technique(), stats, FREQ)
        assert e_gated < e_drowsy

    def test_tags_awake_ablation_charges_full_tag_leakage(self, model):
        n = model.geometry.n_lines
        stats = StandbyStats(
            standby_line_cycles=float(n * 9_000), total_cycles=10_000
        )
        with_tags = technique_leakage_energy(
            model, drowsy_technique(decay_tags=True), stats, FREQ
        )
        without = technique_leakage_energy(
            model, drowsy_technique(decay_tags=False), stats, FREQ
        )
        assert without > with_tags

    def test_standby_cycles_clamped_to_capacity(self, model):
        stats = StandbyStats(standby_line_cycles=1e18, total_cycles=10_000)
        e = technique_leakage_energy(model, gated_vss_technique(), stats, FREQ)
        assert e > 0.0


class TestNetSavingsAlgebra:
    def test_pure_leakage_savings(self):
        r = make_result()
        assert r.net_savings_pct == pytest.approx(60.0)
        assert r.gross_savings_pct == pytest.approx(60.0)
        assert r.perf_loss_pct == 0.0

    def test_event_overhead_deflated_by_time_scale(self):
        r = make_result(dyn_technique_j=10.0e-6 + 1.0e-6 * EVENT_TIME_SCALE)
        # 1 uJ * scale of event energy -> 1 uJ charged -> -100 points.
        assert r.dynamic_overhead_j == pytest.approx(1.0e-6)
        assert r.net_savings_pct == pytest.approx(60.0 - 100.0)

    def test_clock_overhead_full_weight(self):
        r = make_result(
            dyn_technique_j=10.5e-6,
            clock_technique_j=4.5e-6,
        )
        # All of the extra 0.5 uJ is clock: charged at full weight.
        assert r.dynamic_overhead_j == pytest.approx(0.5e-6)

    def test_runtime_leakage_term(self):
        r = make_result(
            technique_cycles=10_100,
            uncontrolled_power_w=5.6,  # 1 J per 1e9 cycles at 5.6 GHz
        )
        assert r.runtime_leakage_j == pytest.approx(100 * 5.6 / FREQ)
        assert r.perf_loss_pct == pytest.approx(1.0)
        assert r.net_savings_pct < 60.0

    def test_event_scale_disable(self):
        r = make_result(
            dyn_technique_j=11.0e-6,
            event_time_scale=1.0,
        )
        assert r.dynamic_overhead_j == pytest.approx(1.0e-6)

    def test_uncontrolled_power_magnitude(self, model):
        """L1I + high-Vt L2 + regfile: a few x the L1D's own leakage."""
        p = uncontrolled_leakage_power(model)
        l1d = model.total_power_all_active()
        assert 2.0 * l1d < p < 10.0 * l1d

    def test_turnoff_and_counts_pass_through(self):
        r = make_result(turnoff_ratio=0.73, induced_misses=42, slow_hits=7)
        assert r.turnoff_ratio == 0.73
        assert r.induced_misses == 42
        assert r.slow_hits == 7
