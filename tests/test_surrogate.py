"""The surrogate sweep tier's trust harness.

The tentpole contract (see :mod:`repro.cpu.surrogate`): a calibrated
surrogate serves whole sweep grids without simulating, every served point
stays inside the documented :class:`ErrorBudget` against the cycle
reference, anything outside the calibration envelope transparently falls
back to the cycle engine bit-identically, and the committed calibration
artifact is versioned, fingerprinted, and reproducible.  These tests are
the enforcement — the tier is only trustworthy because they run in tier-1.
"""

from __future__ import annotations

import json

import pytest

from repro.cpu.surrogate import (
    DEFAULT_ERROR_BUDGET,
    CalibrationConfig,
    ErrorBudget,
    GridPoint,
    OutOfEnvelopeError,
    SurrogateModel,
    committed_artifact_path,
    committed_model,
    fit_exposure_factors,
    surrogate_figure_point,
    surrogate_sweep,
)
from repro.experiments.runner import figure_point, technique_by_name

# Small calibration shared by the module: 2x2 anchors, short runs.  The
# model object is self-contained data (it survives the autouse cache
# reset), so the simulation cost is paid once for the whole module.
N_OPS = 4_000
SMALL = CalibrationConfig(
    intervals=(1024, 4096), l2_latencies=(5, 17), n_ops=N_OPS
)


@pytest.fixture(scope="module")
def small_model():
    return SurrogateModel.calibrate(["gcc"], ["drowsy"], SMALL)


# Served anchor points reconstruct the cycle reference exactly up to one
# float ulp (Counter summation order differs between the reconstructed and
# the live accountant), so "exact" means <= 1e-12 relative here.
EXACT = 1e-12


def _close(surrogate, reference, rel=EXACT):
    assert surrogate.net_savings_pct == pytest.approx(
        reference.net_savings_pct, rel=rel, abs=1e-9
    )
    assert surrogate.perf_loss_pct == pytest.approx(
        reference.perf_loss_pct, rel=rel, abs=1e-9
    )
    assert surrogate.leak_technique_j == pytest.approx(
        reference.leak_technique_j, rel=rel
    )
    assert surrogate.leak_baseline_j == pytest.approx(
        reference.leak_baseline_j, rel=rel
    )


class TestErrorBudget:
    def test_scaled_proportional(self):
        tight = DEFAULT_ERROR_BUDGET.scaled(0.5)
        assert tight.net_savings_pp == DEFAULT_ERROR_BUDGET.net_savings_pp * 0.5
        assert tight.leakage_rel == DEFAULT_ERROR_BUDGET.leakage_rel * 0.5
        assert tight.perf_loss_pp == DEFAULT_ERROR_BUDGET.perf_loss_pp * 0.5

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DEFAULT_ERROR_BUDGET.scaled(0.0)
        with pytest.raises(ValueError):
            DEFAULT_ERROR_BUDGET.scaled(-1.0)

    def test_violations_name_every_broken_term(self):
        class P:
            def __init__(self, net, perf, leak_t, leak_b):
                self.net_savings_pct = net
                self.perf_loss_pct = perf
                self.leak_technique_j = leak_t
                self.leak_baseline_j = leak_b

        budget = ErrorBudget(net_savings_pp=0.5, leakage_rel=0.02,
                             perf_loss_pp=0.25)
        ref = P(40.0, 2.0, 1e-3, 2e-3)
        ok = P(40.4, 2.2, 1.01e-3, 2.02e-3)
        assert budget.within(ok, ref)
        bad = P(41.0, 2.5, 1.2e-3, 2e-3)
        broken = budget.violations(bad, ref)
        assert len(broken) == 3
        assert any("net savings" in v for v in broken)
        assert any("leak_technique_j" in v for v in broken)
        assert any("perf loss" in v for v in broken)

    def test_zero_reference_leakage_not_divided(self):
        class P:
            net_savings_pct = 0.0
            perf_loss_pct = 0.0
            leak_technique_j = 1e-6
            leak_baseline_j = 0.0

        assert DEFAULT_ERROR_BUDGET.within(P(), P())


class TestCalibrationConfig:
    def test_rejects_single_anchor_axes(self):
        with pytest.raises(ValueError, match="2 anchors"):
            CalibrationConfig(intervals=(4096,))
        with pytest.raises(ValueError, match="2 anchors"):
            CalibrationConfig(l2_latencies=(11,))

    def test_rejects_unsorted_anchors(self):
        with pytest.raises(ValueError, match="sorted"):
            CalibrationConfig(intervals=(4096, 1024))
        with pytest.raises(ValueError, match="sorted"):
            CalibrationConfig(l2_latencies=(17, 5))

    def test_roundtrip(self):
        assert CalibrationConfig.from_dict(SMALL.to_dict()) == SMALL


class TestEnvelope:
    def test_anchor_membership_on_plane_axes(self, small_model):
        ok = GridPoint(1024, 5, 85.0, 0.9)
        assert small_model.envelope_violations("gcc", "drowsy", ok) == []
        # Between anchors is extrapolation, not interpolation.
        between = GridPoint(2048, 5, 85.0, 0.9)
        assert small_model.envelope_violations("gcc", "drowsy", between) == [
            "interval"
        ]
        off_l2 = GridPoint(1024, 11, 85.0, 0.9)
        assert small_model.envelope_violations("gcc", "drowsy", off_l2) == [
            "l2_latency"
        ]

    def test_temperature_and_vdd_are_continuous_ranges(self, small_model):
        assert not small_model.envelope_violations(
            "gcc", "drowsy", GridPoint(1024, 5, 63.7, 0.83)
        )
        assert small_model.envelope_violations(
            "gcc", "drowsy", GridPoint(1024, 5, 140.0, 0.9)
        ) == ["temp_c"]
        assert small_model.envelope_violations(
            "gcc", "drowsy", GridPoint(1024, 5, 85.0, 1.2)
        ) == ["vdd"]

    def test_uncalibrated_pair(self, small_model):
        point = GridPoint(1024, 5, 85.0, 0.9)
        assert small_model.envelope_violations("mcf", "drowsy", point) == [
            "uncalibrated"
        ]
        assert small_model.envelope_violations("gcc", "gated-vss", point) == [
            "uncalibrated"
        ]

    def test_evaluate_grid_raises_out_of_envelope(self, small_model):
        with pytest.raises(OutOfEnvelopeError, match="interval"):
            small_model.evaluate_grid(
                "gcc", "drowsy", intervals=(3000,), l2_latencies=(5,)
            )
        with pytest.raises(OutOfEnvelopeError, match="uncalibrated"):
            small_model.evaluate_grid(
                "mcf", "drowsy", intervals=(1024,), l2_latencies=(5,)
            )


class TestServedPointsMatchCycleReference:
    """The heart of the contract: served points == the cycle engine."""

    def test_anchor_point_all_axes(self, small_model):
        reference = figure_point(
            "gcc",
            technique_by_name("drowsy"),
            l2_latency=17,
            temp_c=85.0,
            decay_interval=1024,
            n_ops=N_OPS,
        )
        served = small_model.evaluate(
            "gcc", "drowsy", GridPoint(1024, 17, 85.0, 0.9)
        )
        _close(served, reference)
        assert DEFAULT_ERROR_BUDGET.within(served, reference)

    def test_off_calibration_temperature_is_still_exact(self, small_model):
        """(T, Vdd) are reduced through the real models — no surrogate
        error away from the calibration's own operating point."""
        reference = figure_point(
            "gcc",
            technique_by_name("drowsy"),
            l2_latency=5,
            temp_c=47.5,
            decay_interval=4096,
            n_ops=N_OPS,
        )
        served = small_model.evaluate(
            "gcc", "drowsy", GridPoint(4096, 5, 47.5, 0.9)
        )
        _close(served, reference)

    def test_grid_matches_pointwise_evaluate(self, small_model):
        grid = small_model.evaluate_grid(
            "gcc",
            "drowsy",
            intervals=(1024, 4096),
            l2_latencies=(5, 17),
            temps_c=(60.0, 110.0),
            vdds=(0.85, 0.95),
        )
        assert len(grid) == 16
        i = 0
        for interval in (1024, 4096):
            for l2 in (5, 17):
                for t in (60.0, 110.0):
                    for v in (0.85, 0.95):
                        point = small_model.evaluate(
                            "gcc", "drowsy", GridPoint(interval, l2, t, v)
                        )
                        assert grid[i] == point
                        assert grid[i].decay_interval == interval
                        assert grid[i].l2_latency == l2
                        assert grid[i].temp_c == t
                        i += 1


class TestCalibrationFit:
    def test_exposure_fit_is_pure_function_of_records(self, small_model):
        entry = small_model.entries["gcc/drowsy"]
        refit = fit_exposure_factors(entry.baseline, entry.anchors, SMALL)
        assert refit == entry.exposure

    def test_exposure_factors_plausible(self, small_model):
        exposure = small_model.entries["gcc/drowsy"].exposure
        assert 0.0 <= exposure["mem_exposure"] <= 1.0
        assert 0.0 <= exposure["baseline_mem_exposure"] <= 1.0
        assert exposure["baseline_ipc"] > 0.0

    def test_timing_config_feeds_fast_engine(self, small_model):
        from repro.cpu.config import MachineConfig
        from repro.experiments.runner import run_once

        timing = small_model.timing_config("gcc", "drowsy")
        out = run_once(
            "gcc",
            technique=technique_by_name("drowsy"),
            machine=MachineConfig(),
            n_ops=2000,
            engine="fast",
            timing=timing,
        )
        assert out.stats.cycles > 0

    def test_rejects_ablated_technique(self):
        from dataclasses import replace

        ablated = replace(technique_by_name("drowsy"), wake_cycles=99)
        with pytest.raises(ValueError, match="ablated"):
            SurrogateModel.calibrate(["gcc"], [ablated], SMALL)


class TestArtifactRoundtrip:
    def test_payload_roundtrip_evaluates_identically(self, small_model, tmp_path):
        path = tmp_path / "cal.json"
        small_model.save(path)
        loaded = SurrogateModel.load(path)
        assert loaded.to_payload() == small_model.to_payload()
        point = GridPoint(1024, 5, 85.0, 0.9)
        assert loaded.evaluate("gcc", "drowsy", point) == small_model.evaluate(
            "gcc", "drowsy", point
        )

    def test_stale_code_version_rejected(self, small_model):
        payload = small_model.to_payload()
        payload["code_version"] = "0"
        del payload["fingerprint"]
        with pytest.raises(ValueError, match="stale"):
            SurrogateModel.from_payload(payload)

    def test_unknown_schema_rejected(self, small_model):
        payload = small_model.to_payload()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            SurrogateModel.from_payload(payload)

    def test_corrupt_fingerprint_rejected(self, small_model, tmp_path):
        path = tmp_path / "cal.json"
        small_model.save(path)
        payload = json.loads(path.read_text())
        key = next(iter(payload["entries"]))
        payload["entries"][key]["exposure"]["mem_exposure"] += 0.1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="corrupt"):
            SurrogateModel.load(path)


class TestCommittedArtifact:
    """The versioned calibration shipped with the package."""

    def test_exists_loads_and_covers_standard_pairs(self):
        assert committed_artifact_path().exists()
        model = committed_model()
        assert model is not None
        for benchmark in ("gcc", "mcf"):
            for technique in ("drowsy", "gated-vss"):
                assert model.covers(benchmark, technique)
        # Anchors the whole standard sweep plane.
        from repro.cpu.config import PAPER_L2_LATENCIES
        from repro.experiments.runner import SWEEP_INTERVALS

        assert model.config.intervals == SWEEP_INTERVALS
        assert model.config.l2_latencies == PAPER_L2_LATENCIES
        assert model.config.n_ops == 20_000
        assert model.config.seed == 1

    def test_recalibration_reproduces_stored_records(self):
        """Calibration-drift regression: re-running one committed anchor
        must reproduce the stored record exactly.  If the simulator's
        behaviour changes, this fails and the artifact (plus
        ``CODE_VERSION``) must be regenerated together."""
        from repro.cpu.config import MachineConfig
        from repro.cpu.surrogate import _RunRecord
        from repro.experiments.runner import run_once

        model = committed_model()
        entry = model.entries["gcc/drowsy"]
        interval, l2 = 4096, 11
        stored = entry.anchors[interval][l2]
        rerun = _RunRecord.from_run(
            run_once(
                "gcc",
                technique=technique_by_name("drowsy"),
                machine=MachineConfig().with_l2_latency(l2),
                decay_interval=interval,
                n_ops=model.config.n_ops,
                seed=model.config.seed,
                vdd=model.config.vdd,
            )
        )
        assert rerun == stored

    def test_stored_exposure_matches_refit(self):
        model = committed_model()
        for key, entry in model.entries.items():
            refit = fit_exposure_factors(
                entry.baseline, entry.anchors, model.config
            )
            for name, value in refit.items():
                assert value == pytest.approx(
                    entry.exposure[name], rel=1e-9
                ), (key, name)


class TestSurrogateFigurePoint:
    def test_served_from_committed_artifact(self):
        served = surrogate_figure_point(
            "gcc", technique_by_name("drowsy"), l2_latency=11, temp_c=110.0
        )
        reference = figure_point(
            "gcc", technique_by_name("drowsy"), l2_latency=11, temp_c=110.0
        )
        _close(served, reference)

    def test_nonstandard_request_falls_back_bit_identically(self):
        """A seed the artifact does not cover: the figure-point path never
        calibrates on demand; it must return the cycle result itself."""
        direct = figure_point(
            "gcc", technique_by_name("drowsy"), n_ops=2000, seed=7
        )
        via_surrogate = surrogate_figure_point(
            "gcc", technique_by_name("drowsy"), n_ops=2000, seed=7
        )
        assert via_surrogate == direct

    def test_engine_keyword_routes_here(self):
        a = figure_point(
            "gcc", technique_by_name("drowsy"), engine="surrogate"
        )
        b = surrogate_figure_point("gcc", technique_by_name("drowsy"))
        assert a == b


class TestSurrogateSweepFallback:
    def test_out_of_envelope_points_fall_back_bit_identically(self, small_model):
        results, report = surrogate_sweep(
            "gcc",
            "drowsy",
            intervals=(1024, 3000),
            l2_latencies=(5,),
            temp_c=85.0,
            n_ops=N_OPS,
            model=small_model,
            spot_checks=0,
        )
        assert report.total == 2
        assert report.served == 1
        assert report.fallbacks == 1
        assert report.fallback_reasons == {"interval": 1}
        direct = figure_point(
            "gcc",
            technique_by_name("drowsy"),
            l2_latency=5,
            temp_c=85.0,
            decay_interval=3000,
            n_ops=N_OPS,
        )
        assert results[1] == direct  # dataclass equality: bit-identical
        _close(results[0], figure_point(
            "gcc",
            technique_by_name("drowsy"),
            l2_latency=5,
            temp_c=85.0,
            decay_interval=1024,
            n_ops=N_OPS,
        ))

    def test_spot_check_passes_on_honest_model(self, small_model):
        _results, report = surrogate_sweep(
            "gcc",
            "drowsy",
            intervals=(1024, 4096),
            l2_latencies=(5, 17),
            temp_c=85.0,
            n_ops=N_OPS,
            model=small_model,
            spot_checks=2,
        )
        assert report.spot_checks == 2
        assert report.spot_check_failures == 0
        assert report.served == 4
        assert report.fallbacks == 0

    def test_tampered_calibration_caught_by_spot_check(self, small_model):
        """Drift defence: corrupt the calibration in memory and the
        spot-check must replace the lying value with the cycle reference."""
        tampered = SurrogateModel.from_payload(small_model.to_payload())
        for row in tampered.entries["gcc/drowsy"].anchors.values():
            for rec in row.values():
                rec.standby["standby_line_cycles"] *= 0.5
        results, report = surrogate_sweep(
            "gcc",
            "drowsy",
            intervals=(1024,),
            l2_latencies=(5,),
            temp_c=85.0,
            n_ops=N_OPS,
            model=tampered,
            spot_checks=1,
        )
        assert report.spot_check_failures == 1
        assert report.served == 0
        assert report.fallbacks == 1
        direct = figure_point(
            "gcc",
            technique_by_name("drowsy"),
            l2_latency=5,
            temp_c=85.0,
            decay_interval=1024,
            n_ops=N_OPS,
        )
        assert results[0] == direct

    def test_ablated_technique_never_served(self, small_model):
        from dataclasses import replace

        ablated = replace(technique_by_name("drowsy"), wake_cycles=99)
        _results, report = surrogate_sweep(
            "gcc",
            ablated,
            intervals=(1024,),
            l2_latencies=(5,),
            temp_c=85.0,
            n_ops=N_OPS,
            spot_checks=0,
        )
        assert report.served == 0
        assert report.fallbacks == 1
        assert report.fallback_reasons == {"technique": 1}

    def test_scheduler_fallback_matches_direct_and_warms_store(
        self, small_model, tmp_path
    ):
        """Fallback through a scheduler must store under honest cycle
        hashes: a later all-cycle run of the same point is a warm hit
        returning the identical result."""
        from repro.exec import ResultStore, RunSpec, Scheduler

        store = ResultStore(tmp_path / "cache")
        scheduler = Scheduler(max_workers=1, store=store)
        results, report = surrogate_sweep(
            "gcc",
            "drowsy",
            intervals=(3000,),
            l2_latencies=(5,),
            temp_c=85.0,
            n_ops=N_OPS,
            model=small_model,
            spot_checks=0,
            scheduler=scheduler,
        )
        assert report.fallbacks == 1
        spec = RunSpec(
            benchmark="gcc",
            technique="drowsy",
            l2_latency=5,
            temp_c=85.0,
            decay_interval=3000,
            n_ops=N_OPS,
            engine="ooo",
        )
        cached = store.get(spec)
        assert cached is not None
        assert cached == results[0]


class TestSweepLayerIntegration:
    def test_interval_sweep_surrogate_engine(self, small_model, monkeypatch):
        import repro.cpu.surrogate as surrogate_mod
        from repro.experiments.sweeps import interval_sweep

        monkeypatch.setattr(
            surrogate_mod, "committed_model", lambda: small_model
        )
        results = interval_sweep(
            "gcc",
            technique_by_name("drowsy"),
            intervals=(1024, 4096),
            l2_latency=5,
            temp_c=85.0,
            n_ops=N_OPS,
            engine="surrogate",
        )
        assert [r.decay_interval for r in results] == [1024, 4096]
        reference = figure_point(
            "gcc",
            technique_by_name("drowsy"),
            l2_latency=5,
            temp_c=85.0,
            decay_interval=1024,
            n_ops=N_OPS,
        )
        _close(results[0], reference)

    def test_temperature_sweep_surrogate_is_exact_per_temperature(
        self, small_model, monkeypatch
    ):
        """The surrogate beats the first-order profile here: every
        temperature is a fresh exact reduction, not a scaled anchor."""
        import repro.cpu.surrogate as surrogate_mod
        from repro.experiments.sweeps import temperature_sweep

        monkeypatch.setattr(
            surrogate_mod, "committed_model", lambda: small_model
        )
        results = temperature_sweep(
            "gcc",
            technique_by_name("drowsy"),
            temps_c=(45.0, 110.0),
            l2_latency=5,
            decay_interval=1024,
            n_ops=N_OPS,
            engine="surrogate",
        )
        for result, temp in zip(results, (45.0, 110.0)):
            reference = figure_point(
                "gcc",
                technique_by_name("drowsy"),
                l2_latency=5,
                temp_c=temp,
                decay_interval=1024,
                n_ops=N_OPS,
            )
            _close(result, reference)
