"""Tests for the live-monitoring stack: state fold, watch, live page.

All timing-sensitive assertions pass explicit ``ts``/``now`` values so
nothing here depends on the wall clock; writer-pid liveness is stubbed
where a test needs a "dead" coordinator.
"""

from __future__ import annotations

import json

import pytest

import repro.obs.state as state_mod
from repro.cli import main
from repro.obs.live import (
    LIVE_REPORT_FILENAME,
    LiveReporter,
    build_live_page,
)
from repro.obs.state import CampaignMonitor, CampaignState
from repro.obs.watch import render_watch, watch_campaign

T0 = 1_754_500_000.0


def _ev(kind: str, ts: float, **fields) -> dict:
    record = {"event": kind, "ts": ts, "pid": 4711, "phase": "fig03"}
    record.update(fields)
    return record


def _feed(state: CampaignState, records) -> None:
    for record in records:
        state.apply(record)


def _finished_stream() -> list[dict]:
    return [
        _ev("log_opened", T0, phase=""),
        _ev("phase_started", T0 + 0.1),
        _ev("run_started", T0 + 1, spec="aaa", slot=0),
        _ev("run_finished", T0 + 3, spec="aaa", slot=0, wall_s=2.0),
        _ev("run_started", T0 + 3, spec="bbb", slot=0),
        _ev("run_finished", T0 + 5, spec="bbb", slot=0, wall_s=2.0),
        _ev("phase_finished", T0 + 5.1, wall_s=5.0),
        _ev("batch_finished", T0 + 5.2, jobs=2, cache_hits=0, executed=2),
        _ev(
            "campaign_finished",
            T0 + 5.3,
            phase="",
            status="ok",
            runs_executed=2,
            cache_hits=0,
            wall_s=5.3,
        ),
    ]


class TestCampaignState:
    def test_progress_and_in_flight(self):
        s = CampaignState()
        _feed(
            s,
            [
                _ev("log_opened", T0, phase=""),
                _ev("run_started", T0 + 1, spec="aaa", slot=0),
                _ev("run_started", T0 + 1, spec="bbb", slot=1),
                _ev("run_finished", T0 + 3, spec="aaa", slot=0, wall_s=2.0),
                _ev("cache_hit", T0 + 3, spec="ccc", source="store"),
            ],
        )
        assert s.status(T0 + 4) == "running"
        assert s.phase == "fig03"
        assert list(s.in_flight) == [("bbb", 1)]
        assert s.summary.runs_finished == 1
        assert s.summary.cache_hits == 1
        assert s.ewma_wall_s == 2.0

    def test_ewma_and_eta(self):
        s = CampaignState()
        _feed(
            s,
            [
                _ev("run_started", T0, spec="a", slot=0),
                _ev("run_finished", T0 + 2, spec="a", slot=0, wall_s=2.0),
                _ev("run_started", T0 + 2, spec="b", slot=0),
                _ev("run_finished", T0 + 4, spec="b", slot=0, wall_s=4.0),
                _ev("run_started", T0 + 4, spec="c", slot=0),
            ],
        )
        # alpha=0.25: 0.25*4 + 0.75*2 = 2.5
        assert s.ewma_wall_s == pytest.approx(2.5)
        # one inter-finish gap of 2s -> 0.5 runs/s; one run outstanding
        assert s.throughput() == pytest.approx(0.5)
        assert s.eta_s() == pytest.approx(2.0)

    def test_eta_falls_back_to_wall_before_two_finishes(self):
        s = CampaignState()
        _feed(
            s,
            [
                _ev("run_started", T0, spec="a", slot=0),
                _ev("run_finished", T0 + 3, spec="a", slot=0, wall_s=3.0),
                _ev("run_started", T0 + 3, spec="b", slot=0),
                _ev("run_started", T0 + 3, spec="c", slot=1),
            ],
        )
        assert s.throughput() is None
        assert s.eta_s() == pytest.approx(6.0)

    def test_straggler_anomaly(self):
        s = CampaignState()
        _feed(
            s,
            [
                _ev("run_started", T0, spec="fast", slot=0),
                _ev("run_finished", T0 + 1, spec="fast", slot=0, wall_s=1.0),
                _ev("run_started", T0 + 1, spec="slowpoke", slot=0),
            ],
        )
        # EWMA wall 1s -> straggler floor is max(10, 4*1) = 10s
        assert s.stragglers(T0 + 6) == []
        flagged = s.stragglers(T0 + 30)
        assert [r["spec"] for r in flagged] == ["slowpoke"]
        kinds = [a.kind for a in s.anomalies(T0 + 30)]
        assert "straggler" in kinds

    def test_error_rate_anomaly(self):
        s = CampaignState()
        records = []
        for i in range(6):
            records.append(_ev("run_started", T0 + i, spec=f"ok{i}", slot=0))
            records.append(
                _ev("run_finished", T0 + i + 0.5, spec=f"ok{i}", slot=0, wall_s=0.5)
            )
        for i in range(3):
            records.append(_ev("run_started", T0 + 10 + i, spec=f"bad{i}", slot=0))
            records.append(
                _ev("run_failed", T0 + 10.5 + i, spec=f"bad{i}", slot=0, error="boom")
            )
        _feed(s, records)
        # 3 failures / 9 settled = 33% > 20%, >= 3 failures
        kinds = [a.kind for a in s.anomalies(T0 + 14)]
        assert "errors" in kinds

    def test_stall_needs_dead_pid(self, monkeypatch):
        s = CampaignState()
        _feed(s, [_ev("run_started", T0, spec="a", slot=0)])
        later = T0 + state_mod.STALL_AFTER_S + 5

        monkeypatch.setattr(state_mod, "_pid_alive", lambda pid: True)
        assert s.status(later) == "running"

        monkeypatch.setattr(state_mod, "_pid_alive", lambda pid: False)
        assert s.status(later) == "stalled"
        kinds = [a.kind for a in s.anomalies(later)]
        assert "stall" in kinds

    def test_campaign_finished_is_terminal(self, monkeypatch):
        s = CampaignState()
        _feed(s, _finished_stream())
        assert s.status(T0 + 10) == "done"
        assert s.in_flight == {}
        assert s.eta_s() is None
        # A dead pid long after the fact is NOT a stall once finished.
        monkeypatch.setattr(state_mod, "_pid_alive", lambda pid: False)
        assert s.status(T0 + 10_000) == "done"

    def test_failed_campaign_status(self):
        s = CampaignState()
        _feed(
            s,
            [
                _ev("run_started", T0, spec="a", slot=0),
                _ev("run_failed", T0 + 1, spec="a", slot=0, error="boom"),
                _ev("campaign_finished", T0 + 2, phase="", status="failed"),
            ],
        )
        assert s.status(T0 + 3) == "failed"

    def test_to_dict_snapshot(self):
        s = CampaignState()
        _feed(s, _finished_stream())
        payload = json.loads(json.dumps(s.to_dict(T0 + 6), sort_keys=True))
        assert payload["schema"] == state_mod.STATE_SCHEMA_VERSION
        assert payload["status"] == "done"
        assert payload["batches"] == 1
        assert payload["in_flight"] == []
        assert payload["finished"]["status"] == "ok"
        assert payload["summary"]["runs_finished"] == 2
        [phase] = [
            p for p in payload["summary"]["phases"] if p["name"] == "fig03"
        ]
        assert phase["runs_finished"] == 2


def _write_log(path, records) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


class TestCampaignMonitor:
    def test_refresh_folds_and_resumes(self, tmp_path):
        events = tmp_path / "events.jsonl"
        stream = _finished_stream()
        _write_log(events, stream[:4])
        monitor = CampaignMonitor(tmp_path)
        state = monitor.refresh()
        assert state.summary.runs_finished == 1
        with events.open("a", encoding="utf-8") as fh:
            for record in stream[4:]:
                fh.write(json.dumps(record) + "\n")
        state = monitor.refresh()
        assert state is monitor.state
        assert state.status(T0 + 10) == "done"

    def test_rotation_resets_state(self, tmp_path):
        events = tmp_path / "events.jsonl"
        _write_log(events, _finished_stream())
        monitor = CampaignMonitor(tmp_path)
        assert monitor.refresh().summary.runs_finished == 2
        # A re-run rotates the old log aside and opens a fresh one.
        events.replace(tmp_path / "events.jsonl.1")
        _write_log(
            events,
            [
                _ev("log_opened", T0 + 100, phase=""),
                _ev("run_started", T0 + 101, spec="new", slot=0),
            ],
        )
        state = monitor.refresh()
        assert state.summary.runs_finished == 0
        assert list(state.in_flight) == [("new", 0)]
        assert state.status(T0 + 102) == "running"


class TestWatch:
    def test_render_watch_frame(self):
        s = CampaignState()
        _feed(s, _finished_stream()[:-1])  # still running
        frame = render_watch(s, campaign="demo", now=T0 + 6)
        assert "RUNNING" in frame
        assert "demo" in frame
        assert "fig03" in frame
        assert "█" in frame
        assert "2/2" in frame

    def test_render_watch_finished(self):
        s = CampaignState()
        _feed(s, _finished_stream())
        frame = render_watch(s, now=T0 + 6)
        assert "DONE" in frame
        assert "finished: status ok" in frame

    def test_watch_once_json_cli(self, tmp_path, capsys):
        _write_log(tmp_path / "events.jsonl", _finished_stream())
        rc = main(["watch", str(tmp_path), "--once", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "done"
        assert payload["summary"]["runs_finished"] == 2

    def test_watch_once_missing_log_exits_2(self, tmp_path, capsys):
        rc = main(["watch", str(tmp_path), "--once"])
        assert rc == 2
        assert "no event log" in capsys.readouterr().err

    def test_watch_loop_stops_on_finished(self, tmp_path):
        events = tmp_path / "events.jsonl"
        stream = _finished_stream()
        _write_log(events, stream[:4])

        def fake_sleep(_interval):
            # The writer finishes the campaign between two frames.
            with events.open("a", encoding="utf-8") as fh:
                for record in stream[4:]:
                    fh.write(json.dumps(record) + "\n")

        import io

        out = io.StringIO()
        rc = watch_campaign(
            str(tmp_path),
            interval=0.01,
            stream=out,
            clock=lambda: T0 + 6,
            sleep=fake_sleep,
            max_frames=10,
        )
        assert rc == 0
        assert "DONE" in out.getvalue()


def _ts_record(spec: str, n: int = 5) -> dict:
    return {
        "spec": spec,
        "phase": "fig03",
        "series": [
            {"name": "leak.total_j", "values": [float(i) for i in range(n)]},
            {"name": "cpu.ipc", "values": [1.0, 1.2], "tail": 1.4},
        ],
    }


class TestLivePage:
    def test_running_page_has_refresh_and_progress(self):
        s = CampaignState()
        _feed(s, _finished_stream()[:-1])
        page = build_live_page(
            s,
            campaign="demo",
            runs=[_ts_record("aaa")],
            refresh_s=2.0,
            now=T0 + 6,
        )
        assert "http-equiv='refresh'" in page
        assert "fig03" in page
        assert "<svg" in page  # sparkline rendered
        assert "1.4" in page  # cpu.ipc tail value

    def test_finished_page_is_static(self):
        s = CampaignState()
        _feed(s, _finished_stream())
        page = build_live_page(s, refresh_s=2.0, now=T0 + 6)
        assert "http-equiv" not in page
        assert "campaign finished: status ok" in page

    def test_anomalies_rendered(self, monkeypatch):
        s = CampaignState()
        _feed(s, [_ev("run_started", T0, spec="a", slot=0)])
        monkeypatch.setattr(state_mod, "_pid_alive", lambda pid: False)
        page = build_live_page(
            s, refresh_s=2.0, now=T0 + state_mod.STALL_AFTER_S + 5
        )
        assert "Anomalies" in page
        assert "stall" in page

    def test_live_reporter_atomic_rewrites(self, tmp_path):
        events = tmp_path / "events.jsonl"
        stream = _finished_stream()
        _write_log(events, stream[:4])
        _write_log(tmp_path / "timeseries.jsonl", [_ts_record("aaa")])

        reporter = LiveReporter(tmp_path)
        path = reporter.refresh()
        assert path == tmp_path / LIVE_REPORT_FILENAME
        first = path.read_text()
        assert "http-equiv='refresh'" in first
        assert "<svg" in first

        with events.open("a", encoding="utf-8") as fh:
            for record in stream[4:]:
                fh.write(json.dumps(record) + "\n")
        reporter.refresh()
        second = path.read_text()
        assert "http-equiv" not in second
        assert "campaign finished" in second
        litter = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert litter == []

    def test_report_live_once_cli(self, tmp_path, capsys):
        _write_log(tmp_path / "events.jsonl", _finished_stream())
        rc = main(["report", str(tmp_path), "--live", "--once"])
        assert rc == 0
        assert LIVE_REPORT_FILENAME in capsys.readouterr().out
        assert (tmp_path / LIVE_REPORT_FILENAME).exists()

    def test_report_once_without_live_rejected(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path), "--once"])
        assert rc == 2
