"""Tests for ``repro report`` (HTML) and ``repro diff`` (cross-campaign).

Synthetic campaigns — an event log plus a timeseries log written through
the real writers — drive the report and diff layers deterministically;
one end-to-end case runs an actual two-config campaign through the
scheduler and asserts the acceptance criteria: a single self-contained
HTML file showing line-state fractions and windowed leakage energy.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.diff import diff_campaigns, load_snapshot, render_diff
from repro.obs.events import EventLog
from repro.obs.report import MAX_RUN_SECTIONS, build_report
from repro.obs.timeseries import (
    TIMESERIES_FILENAME,
    RunRecorder,
    Series,
    TimeseriesLog,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _spec(i: int) -> str:
    return f"{i:02d}" * 32


def _payload(*, live=0.8, leak=1e-6, misses=3.0) -> dict:
    rec = RunRecorder()
    frac = rec.series("cache.frac_live", kind="mean", base_window=1024)
    for _ in range(4):
        frac.append(live)
    drowsy = rec.series("cache.frac_drowsy", kind="mean", base_window=1024)
    for _ in range(4):
        drowsy.append(1.0 - live)
    induced = rec.series("cache.induced_misses", kind="sum", base_window=1024)
    induced.append(misses)
    ipc = rec.series("cpu.ipc", kind="mean", base_window=1024)
    for v in (0.9, 1.1):
        ipc.append(v)
    rec.add(Series.from_values("leak.total_j", [leak, leak], kind="sum", window=1024))
    rec.add(Series.from_values("leak.sub_j", [leak * 0.7] * 2, kind="sum", window=1024))
    rec.add(Series.from_values("leak.gate_j", [leak * 0.3] * 2, kind="sum", window=1024))
    rec.add(Series.from_values("leak.data_j", [leak * 0.9] * 2, kind="sum", window=1024))
    rec.add(Series.from_values("leak.edge_j", [leak * 0.1] * 2, kind="sum", window=1024))
    return rec.to_payload()


def _campaign(path, runs, *, wall=1.0, leak=1e-6, misses=3.0):
    """Write a synthetic campaign: ``runs`` finished specs in one phase."""
    path.mkdir(parents=True, exist_ok=True)
    log = EventLog(path / "events.jsonl")
    ts = TimeseriesLog(path / TIMESERIES_FILENAME)
    log.write("phase_started", "fig1", {"name": "fig1"})
    for i in range(runs):
        log.write("run_started", "fig1", {"spec": _spec(i), "slot": i})
        log.write(
            "run_finished",
            "fig1",
            {"spec": _spec(i), "slot": i, "wall_s": wall, "cpu_s": wall},
        )
        ts.write(_spec(i), "fig1", _payload(leak=leak, misses=misses))
    log.write("phase_finished", "fig1", {"name": "fig1", "wall_s": wall * runs})
    log.close()
    ts.close()
    return path


class TestReport:
    def test_synthetic_campaign_renders_self_contained_html(self, tmp_path):
        camp = _campaign(tmp_path / "camp", runs=2)
        html = build_report(camp)
        assert html.startswith("<!DOCTYPE html>")
        # Self-contained: styling inline, charts inline SVG, no external
        # fetches of any kind.
        assert "<style>" in html and "<svg" in html
        for token in ("http://", "https://", "<script", "<img", "@import"):
            assert token not in html
        # The acceptance content: line state + windowed leakage energy.
        assert "Line state" in html
        assert "Leakage energy by structure" in html
        assert "Leakage energy by mechanism" in html
        assert "IPC" in html
        # Both runs, identified by their spec hashes.
        assert _spec(0)[:12] in html
        assert _spec(1)[:12] in html
        # Phase table and stat tiles.
        assert "fig1" in html
        assert "runs executed" in html
        # Dark mode ships in the same file.
        assert "prefers-color-scheme: dark" in html

    def test_missing_timeseries_degrades_gracefully(self, tmp_path):
        camp = _campaign(tmp_path / "camp", runs=1)
        (camp / TIMESERIES_FILENAME).unlink()
        html = build_report(camp)
        assert "No timeseries telemetry" in html
        assert "<svg" not in html  # nothing to chart, no broken charts

    def test_missing_events_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no event log"):
            build_report(tmp_path / "nowhere")

    def test_run_sections_are_capped(self, tmp_path):
        camp = _campaign(tmp_path / "camp", runs=MAX_RUN_SECTIONS + 3)
        html = build_report(camp)
        assert f"3 further run(s)" in html
        assert html.count('<section class="run"') == MAX_RUN_SECTIONS

    def test_acceptance_fresh_two_config_reproduce(self, tmp_path):
        """Acceptance: a fresh two-config campaign through the scheduler
        reports line-state fractions and windowed leakage per run."""
        from repro.exec.scheduler import Scheduler
        from repro.exec.spec import RunSpec
        from repro.experiments.runner import clear_caches

        out = tmp_path / "res"
        out.mkdir()
        clear_caches()
        obs.enable(out / "events.jsonl")
        with obs.phase("smoke"):
            Scheduler().run(
                [
                    RunSpec(benchmark="gcc", technique="drowsy", n_ops=1500),
                    RunSpec(benchmark="gcc", technique="gated-vss", n_ops=1500),
                ]
            )
        obs.disable()
        html = build_report(out)
        assert html.count('<section class="run"') == 2
        assert "Line state" in html
        assert "Leakage energy by structure" in html
        assert "drowsy" in html or "live" in html  # legend labels present


class TestDiff:
    def test_load_snapshot_joins_events_and_timeseries(self, tmp_path):
        camp = _campaign(tmp_path / "a", runs=2, wall=1.5, leak=2e-6)
        snap = load_snapshot(camp)
        assert snap.phase_wall_s["fig1"] == 3.0
        rec = snap.specs[_spec(0)]
        assert rec.wall_s == 1.5
        assert rec.leak_j == pytest.approx(4e-6)
        assert rec.induced_misses == pytest.approx(3.0)

    def test_identical_campaigns_have_no_regressions(self, tmp_path):
        a = _campaign(tmp_path / "a", runs=2)
        b = _campaign(tmp_path / "b", runs=2)
        diff = diff_campaigns(a, b)
        assert len(diff.matched) == 2
        assert not diff.only_a and not diff.only_b
        assert not diff.has_regressions(0.10)
        out = render_diff(diff)
        assert "REGRESSED" not in out
        assert "0 regressed spec(s)" in out

    def test_leak_regression_is_flagged(self, tmp_path):
        a = _campaign(tmp_path / "a", runs=2, leak=1e-6)
        b = _campaign(tmp_path / "b", runs=2, leak=2e-6)
        diff = diff_campaigns(a, b)
        assert diff.has_regressions(0.10)
        assert not diff.has_regressions(1.5)  # +100% < +150% threshold
        out = render_diff(diff, threshold=0.10)
        assert "REGRESSED" in out
        assert "2 regressed spec(s)" in out

    def test_wall_regression_is_flagged(self, tmp_path):
        a = _campaign(tmp_path / "a", runs=1, wall=1.0)
        b = _campaign(tmp_path / "b", runs=1, wall=1.3)
        diff = diff_campaigns(a, b)
        assert diff.has_regressions(0.10)
        assert "+30.0%" in render_diff(diff)

    def test_unmatched_specs_are_reported_not_compared(self, tmp_path):
        a = _campaign(tmp_path / "a", runs=3)
        b = _campaign(tmp_path / "b", runs=2)
        diff = diff_campaigns(a, b)
        assert len(diff.matched) == 2
        assert diff.only_a == [_spec(2)]
        assert diff.only_b == []
        assert "only in A: 1" in render_diff(diff)

    def test_diff_without_timeseries_compares_wall_only(self, tmp_path):
        a = _campaign(tmp_path / "a", runs=1)
        b = _campaign(tmp_path / "b", runs=1)
        (a / TIMESERIES_FILENAME).unlink()
        (b / TIMESERIES_FILENAME).unlink()
        diff = diff_campaigns(a, b)
        assert len(diff.matched) == 1
        assert diff.matched[0].leak_frac is None
        assert not diff.has_regressions(0.10)
        render_diff(diff)  # must not raise


class TestCli:
    def test_report_and_diff_subcommands(self, tmp_path, capsys):
        from repro.cli import main

        a = _campaign(tmp_path / "a", runs=1)
        b = _campaign(tmp_path / "b", runs=1, wall=2.0)
        assert main(["report", str(a)]) == 0
        assert (a / "report.html").is_file()
        out = tmp_path / "elsewhere.html"
        assert main(["report", str(a), "--output", str(out)]) == 0
        assert out.is_file()
        assert main(["diff", str(a), str(b)]) == 0
        assert (
            main(["diff", str(a), str(b), "--fail-on-regression"]) == 1
        )
        assert "REGRESSED" in capsys.readouterr().out
        assert main(["report", str(tmp_path / "nowhere")]) == 2
