"""Tests for the observability subsystem (``repro.obs``).

The contract under test: disabled (the default) the layer is inert —
no-op spans, dropped counters, no file I/O anywhere on the hot paths —
and enabled it records counters, hierarchical spans, and a structured
JSONL event log without changing a single simulation result.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.memo import LRUMemo
from repro.obs.core import _NULL_SPAN
from repro.obs.events import EVENT_SCHEMA_VERSION, EventLog, read_events
from repro.obs.views import (
    aggregate,
    load_campaign_events,
    render_stats,
    render_trace,
    resolve_events_path,
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with the layer disabled and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDisabledIsInert:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_span_is_shared_noop_singleton(self):
        # Zero-overhead contract: no allocation per disabled span.
        assert obs.span("anything") is _NULL_SPAN
        with obs.span("anything"):
            pass
        assert obs.span_stats() == {}

    def test_incr_drops_counts(self):
        obs.incr("x", 5)
        assert obs.counters() == {}

    def test_emit_drops_events(self, tmp_path):
        obs.emit("run_started", spec="abc")  # must not raise
        assert obs.log_path() is None

    def test_phase_is_noop(self):
        with obs.phase("tables"):
            obs.incr("y")
        assert obs.counters() == {}


class TestCountersAndSpans:
    def test_counters_accumulate(self):
        obs.enable()
        obs.incr("a")
        obs.incr("a", 2)
        obs.incr("b", 0.5)
        assert obs.counters() == {"a": 3, "b": 0.5}

    def test_spans_nest_into_slash_paths(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        stats = obs.span_stats()
        assert stats["outer"]["count"] == 1
        assert stats["outer/inner"]["count"] == 2
        assert stats["outer"]["total_s"] >= stats["outer/inner"]["total_s"]

    def test_reset_clears_everything(self):
        obs.enable()
        obs.incr("a")
        with obs.span("s"):
            pass
        obs.reset()
        assert obs.counters() == {}
        assert obs.span_stats() == {}

    def test_disable_then_incr_is_dropped(self):
        obs.enable()
        obs.incr("a")
        obs.disable()
        obs.incr("a")
        assert obs.counters() == {"a": 1}


class TestEventLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.write("run_started", None, {"spec": "abc", "slot": 0})
        log.write("run_finished", "fig1", {"spec": "abc", "wall_s": 0.5})
        log.close()
        events = list(read_events(path))
        assert events[0]["event"] == "log_opened"
        assert events[0]["schema_version"] == EVENT_SCHEMA_VERSION
        assert events[1]["event"] == "run_started"
        assert events[1]["spec"] == "abc"
        assert events[2]["phase"] == "fig1"
        assert all("t" in e and "pid" in e for e in events)

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.write("run_started", None, {"spec": "abc"})
        log.close()
        with path.open("a") as fh:
            fh.write('{"event": "run_finis')  # torn write
        events = list(read_events(path))
        assert [e["event"] for e in events] == ["log_opened", "run_started"]

    def test_enable_attaches_log_and_emit_writes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.enable(path)
        assert obs.log_path() == str(path)
        obs.emit("cache_hit", spec="abc", source="store")
        with obs.phase("tables"):
            obs.emit("run_started", spec="def")
        obs.disable()
        events = list(read_events(path))
        kinds = [e["event"] for e in events]
        assert kinds == [
            "log_opened",
            "cache_hit",
            "phase_started",
            "run_started",
            "phase_finished",
        ]
        # Events inside a phase are stamped with it.
        assert events[3]["phase"] == "tables"
        finish = events[4]
        assert finish["wall_s"] >= 0.0

    def test_enable_without_log_still_counts(self):
        obs.enable()
        assert obs.log_path() is None
        obs.emit("run_started", spec="x")  # no log attached: dropped
        obs.incr("a")
        assert obs.counters() == {"a": 1}


class TestViews:
    def _write_log(self, path):
        log = EventLog(path)
        log.write("phase_started", "fig1", {"name": "fig1"})
        log.write("run_started", "fig1", {"spec": "a" * 64, "slot": 0})
        log.write(
            "run_finished",
            "fig1",
            {"spec": "a" * 64, "slot": 0, "wall_s": 1.5, "cpu_s": 1.4,
             "max_rss_kb": 1000.0, "worker": 1234},
        )
        log.write("cache_hit", "fig1", {"spec": "b" * 64, "source": "store"})
        log.write("run_retried", "fig1", {"spec": "c" * 64, "attempt": 1})
        log.write("phase_finished", "fig1", {"name": "fig1", "wall_s": 2.0})
        log.write(
            "counters", None,
            {"counters": {"solver.memo_hits": 7},
             "spans": {"x/y": {"count": 2, "total_s": 0.1}}},
        )
        log.close()

    def test_resolve_accepts_dir_and_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path)
        assert resolve_events_path(tmp_path) == path
        assert resolve_events_path(path) == path
        with pytest.raises(FileNotFoundError, match="no event log"):
            resolve_events_path(tmp_path / "nowhere")

    def test_aggregate(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path)
        summary = aggregate(load_campaign_events(path))
        phase = summary.phases["fig1"]
        assert phase.runs_started == 1
        assert phase.runs_finished == 1
        assert phase.cache_hits == 1
        assert phase.retries == 1
        assert phase.wall_s == 2.0
        assert phase.run_wall_s == 1.5
        assert summary.max_rss_kb == 1000.0
        assert summary.counters["solver.memo_hits"] == 7
        assert summary.spans["x/y"]["count"] == 2
        assert summary.slowest_runs[0]["spec"] == "a" * 64

    def test_render_trace_and_stats(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_log(path)
        events = load_campaign_events(path)
        trace = render_trace(events, limit=5)
        assert "run_finished" in trace
        assert "clipped" in trace
        stats = render_stats(aggregate(events))
        assert "runs executed" in stats
        assert "solver.memo_hits" in stats
        assert "x/y" in stats


class TestFailurePaths:
    """The degraded campaigns: failures, retries, timeouts, torn logs."""

    def _write_failure_log(self, path):
        log = EventLog(path)
        log.write("phase_started", "fig1", {"name": "fig1"})
        log.write("run_started", "fig1", {"spec": "a" * 64, "slot": 0})
        log.write(
            "run_failed",
            "fig1",
            {"spec": "a" * 64, "error": "ValueError: boom"},
        )
        log.write("run_retried", "fig1", {"spec": "a" * 64, "attempt": 2})
        log.write("run_timeout", "fig1", {"spec": "b" * 64, "timeout_s": 60})
        log.write(
            "run_requeued",
            "fig1",
            {"spec": "b" * 64, "reason": "pool timeout"},
        )
        log.write(
            "run_finished",
            "fig1",
            {"spec": "a" * 64, "slot": 0, "wall_s": 0.2},
        )
        log.close()
        with path.open("a") as fh:
            fh.write('{"event": "run_finis')  # torn final line (crash)
        return path

    def test_aggregate_counts_every_failure_kind(self, tmp_path):
        path = self._write_failure_log(tmp_path / "events.jsonl")
        summary = aggregate(read_events(path))
        phase = summary.phases["fig1"]
        assert phase.failures == 1
        assert phase.retries == 1
        assert phase.timeouts == 1
        assert phase.requeues == 1
        assert phase.runs_finished == 1  # the torn duplicate is dropped
        assert summary.events_total == 8  # log_opened + 7 intact events

    def test_requeue_is_not_double_counted_as_retry(self, tmp_path):
        """Regression: abandoned pool jobs used to emit run_retried with
        attempt=0 on top of their run_timeout, so `repro stats` reported
        them as both timeouts and retries.  A requeue is its own bucket,
        matching the ExecutionMetrics accounting."""
        path = self._write_failure_log(tmp_path / "events.jsonl")
        summary = aggregate(read_events(path))
        phase = summary.phases["fig1"]
        # The timed-out spec ("b") contributes one timeout and one
        # requeue — and exactly zero retries (those belong to "a").
        assert (phase.timeouts, phase.requeues, phase.retries) == (1, 1, 1)

    def test_render_trace_surfaces_failure_detail(self, tmp_path):
        path = self._write_failure_log(tmp_path / "events.jsonl")
        trace = render_trace(read_events(path))
        assert "run_failed" in trace
        assert "ValueError: boom" in trace
        assert "attempt 2" in trace
        assert "run_timeout" in trace
        assert "run_requeued" in trace
        assert "pool timeout" in trace

    def test_render_stats_counts_failures(self, tmp_path):
        path = self._write_failure_log(tmp_path / "events.jsonl")
        stats = render_stats(aggregate(read_events(path)))
        assert "failures" in stats
        assert "timeouts" in stats
        assert "requeued" in stats


class TestEventLogRotation:
    def test_existing_log_rotates_to_dot_one(self, tmp_path):
        """Re-running a campaign into the same directory must not clobber
        the previous evidence: the old log moves to ``events.jsonl.1``."""
        path = tmp_path / "events.jsonl"
        first = EventLog(path)
        first.write("run_started", None, {"spec": "old" * 21 + "x"})
        first.close()
        second = EventLog(path)
        second.write("run_started", None, {"spec": "new" * 21 + "x"})
        second.close()
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.is_file()
        old_events = list(read_events(rotated))
        new_events = list(read_events(path))
        assert old_events[1]["spec"].startswith("old")
        assert new_events[1]["spec"].startswith("new")

    def test_third_run_keeps_exactly_one_generation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for generation in ("g1", "g2", "g3"):
            log = EventLog(path)
            log.write("run_started", None, {"spec": generation})
            log.close()
        assert list(read_events(path))[1]["spec"] == "g3"
        assert list(read_events(tmp_path / "events.jsonl.1"))[1]["spec"] == "g2"
        assert not (tmp_path / "events.jsonl.2").exists()


class TestTimeseriesStaysOutOfResults:
    def test_store_bytes_identical_with_obs_on(self, tmp_path):
        """The telemetry channel must not leak into the content-addressed
        result store: stored payload bytes are identical with obs off and
        on, and never mention the timeseries."""
        from repro.exec.scheduler import Scheduler
        from repro.exec.spec import RunSpec
        from repro.exec.store import ResultStore
        from repro.experiments.runner import clear_caches

        spec = RunSpec(benchmark="gcc", technique="drowsy", n_ops=1500)

        clear_caches()
        store_off = ResultStore(tmp_path / "off")
        Scheduler(store=store_off).run([spec])

        clear_caches()
        obs.enable(tmp_path / "events.jsonl")
        store_on = ResultStore(tmp_path / "on")
        Scheduler(store=store_on).run([spec])
        obs.disable()

        key = spec.content_hash()
        blob_off = (tmp_path / "off" / key[:2] / f"{key}.json").read_bytes()
        blob_on = (tmp_path / "on" / key[:2] / f"{key}.json").read_bytes()
        assert blob_off == blob_on
        assert b"timeseries" not in blob_on
        # ... while the telemetry itself went to the sidecar file.
        assert (tmp_path / "timeseries.jsonl").is_file()


class TestBitIdentityWithObsEnabled:
    def test_figure_point_identical_and_counters_populated(self, tmp_path):
        """Acceptance: the instrumented hot paths yield bit-identical
        results with observability on, and the counters actually move."""
        from dataclasses import fields

        from repro.experiments.runner import (
            clear_caches,
            figure_point,
            technique_by_name,
        )
        from repro.leakctl.energy import NetSavingsResult

        kwargs = dict(l2_latency=5, n_ops=1500)
        tech = technique_by_name("drowsy")
        clear_caches()
        plain = figure_point("gcc", tech, **kwargs)
        clear_caches()
        obs.enable(tmp_path / "events.jsonl")
        observed = figure_point("gcc", tech, **kwargs)
        counters = obs.counters()
        spans = obs.span_stats()
        obs.disable()
        for f in fields(NetSavingsResult):
            assert getattr(plain, f.name) == getattr(observed, f.name), f.name
        assert counters["runner.runs"] >= 2  # baseline + technique
        assert counters["runner.figure_points"] == 1
        assert counters["pipeline.runs"] >= 2
        assert counters["pipeline.cycles"] > 0
        assert counters["solver.memo_misses"] > 0
        assert "runner.pipeline_run" in spans


class TestLRUMemo:
    def test_bounded_with_lru_eviction(self):
        memo = LRUMemo(maxsize=2)
        memo["a"] = 1
        memo["b"] = 2
        assert memo.get("a") == 1  # refresh a; b is now LRU
        memo["c"] = 3
        assert len(memo) == 2
        assert memo.evictions == 1
        assert memo.get("b") is None
        assert memo.get("a") == 1
        assert memo.get("c") == 3

    def test_contains_and_clear(self):
        memo = LRUMemo(maxsize=4)
        memo["k"] = "v"
        assert "k" in memo
        memo.clear()
        assert "k" not in memo
        assert len(memo) == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUMemo(maxsize=0)

    def test_hot_path_memos_are_bounded(self):
        """The PR-2 memo dicts that grew without bound are now LRU-capped."""
        from repro.circuits.library import _RESIDUAL_MEMO
        from repro.circuits.solver import _SOLVE_MEMO
        from repro.leakage.kdesign import _KDESIGN_MEMO

        for memo in (_SOLVE_MEMO, _KDESIGN_MEMO, _RESIDUAL_MEMO):
            assert isinstance(memo, LRUMemo)
            assert memo.maxsize >= 256


class TestResetAll:
    def test_reset_all_empties_every_analytic_memo(self):
        """One switch clears the solver, kdesign, and residual memos (and
        the kdesign surface-fit cache riding on them) together."""
        from repro.circuits.library import _RESIDUAL_MEMO
        from repro.circuits.solver import _SOLVE_MEMO
        from repro.leakage.kdesign import _KDESIGN_MEMO, kdesign_surface
        from repro.memo import reset_all

        # Populate all three layers through their public entry point.
        kdesign_surface("nand2", "70nm")
        assert len(_SOLVE_MEMO) > 0
        assert len(_KDESIGN_MEMO) > 0
        assert kdesign_surface.cache_info().currsize > 0
        _RESIDUAL_MEMO["probe"] = 1.0
        assert len(_RESIDUAL_MEMO) > 0

        reset_all()
        assert len(_SOLVE_MEMO) == 0
        assert len(_KDESIGN_MEMO) == 0
        assert len(_RESIDUAL_MEMO) == 0
        assert kdesign_surface.cache_info().currsize == 0

    def test_new_memos_register_automatically(self):
        from repro.memo import reset_all

        memo = LRUMemo(maxsize=4)
        memo["k"] = "v"
        reset_all()
        assert len(memo) == 0

    def test_register_reset_runs_auxiliary_callable(self):
        from repro.memo import register_reset, reset_all

        calls = []
        fn = lambda: calls.append(1)  # noqa: E731
        register_reset(fn)
        register_reset(fn)  # idempotent by identity
        reset_all()
        assert calls == [1]

    def test_clear_caches_routes_through_reset_all(self):
        """runner.clear_caches must leave the analytic layer fully empty."""
        from repro.circuits.solver import _SOLVE_MEMO
        from repro.experiments.runner import clear_caches
        from repro.leakage.kdesign import _KDESIGN_MEMO, kdesign_surface

        kdesign_surface("nand2", "70nm")
        assert len(_SOLVE_MEMO) > 0
        clear_caches()
        assert len(_SOLVE_MEMO) == 0
        assert len(_KDESIGN_MEMO) == 0
        assert kdesign_surface.cache_info().currsize == 0


class TestCampaignEventLog:
    def test_fresh_reproduce_writes_trace_with_runs_and_hits(self, tmp_path):
        """Acceptance: ``repro trace`` on a fresh campaign shows per-run
        events (including cache hits on the warm rerun) and the per-phase
        breakdown."""
        from repro.experiments.campaign import run_campaign

        out = tmp_path / "res"
        run_campaign(out, quick=True, benchmarks=("gcc",))
        assert not obs.is_enabled()  # campaign owns and closes its log
        events = load_campaign_events(out)
        kinds = {e["event"] for e in events}
        assert "run_started" in kinds
        assert "run_finished" in kinds
        assert "phase_finished" in kinds
        assert "counters" in kinds
        summary = aggregate(events)
        assert summary.runs_finished > 0
        assert "fig12_13_best_interval" in summary.phases
        assert summary.counters.get("pipeline.runs", 0) > 0
        # The fig12_13 sweep re-requests points already in the store, so a
        # single campaign already produces cache hits.
        assert summary.cache_hits > 0
        trace = render_trace(events, limit=10)
        assert "per-phase breakdown" in trace

    def test_no_obs_flag_writes_no_log(self, tmp_path):
        from repro.experiments.campaign import run_campaign

        out = tmp_path / "res"
        run_campaign(out, quick=True, benchmarks=("gcc",), observe=False)
        assert not (out / "events.jsonl").exists()
