"""Tests for the plain set-associative cache and the memory hierarchy."""

from __future__ import annotations

import pytest

from repro.cache.cache import Cache
from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.config import MachineConfig
from repro.leakage.structures import CacheGeometry
from repro.power.wattch import EnergyAccountant, default_power_config

TINY = CacheGeometry(size_bytes=4 * 64 * 2, assoc=2, line_bytes=64)  # 4 sets


def addr_for(cache: Cache, set_idx: int, tag: int) -> int:
    return cache.line_addr_of(set_idx, tag)


class TestCacheMechanics:
    @pytest.fixture()
    def cache(self):
        return Cache("t", TINY)

    def test_slice_roundtrip(self, cache):
        for set_idx in range(4):
            for tag in (0, 1, 77, 12345):
                addr = cache.line_addr_of(set_idx, tag)
                s, t = cache.slice_addr(addr)
                assert (s, t) == (set_idx, tag)

    def test_offset_does_not_change_line(self, cache):
        base = cache.line_addr_of(2, 9)
        assert cache.slice_addr(base + 63) == cache.slice_addr(base)
        assert cache.slice_addr(base + 64) != cache.slice_addr(base)

    def test_miss_then_hit(self, cache):
        addr = addr_for(cache, 0, 5)
        hit, _ = cache.access(addr)
        assert not hit
        hit, _ = cache.access(addr)
        assert hit
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self, cache):
        a = addr_for(cache, 1, 10)
        b = addr_for(cache, 1, 11)
        c = addr_for(cache, 1, 12)
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a MRU, b LRU
        cache.access(c)  # evicts b
        hit_a, _ = cache.access(a)
        hit_b, _ = cache.access(b)
        assert hit_a
        assert not hit_b

    def test_writeback_on_dirty_eviction(self, cache):
        a = addr_for(cache, 2, 1)
        b = addr_for(cache, 2, 2)
        c = addr_for(cache, 2, 3)
        cache.access(a, is_write=True)
        cache.access(b)
        _, victim = cache.access(c)  # evicts dirty a
        assert victim is not None
        assert victim.addr == a
        assert victim.dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self, cache):
        a = addr_for(cache, 2, 1)
        b = addr_for(cache, 2, 2)
        c = addr_for(cache, 2, 3)
        cache.access(a)
        cache.access(b)
        _, victim = cache.access(c)
        assert victim is None

    def test_write_allocate(self, cache):
        addr = addr_for(cache, 3, 7)
        hit, _ = cache.access(addr, is_write=True)
        assert not hit
        hit, _ = cache.access(addr)
        assert hit

    def test_invalid_ways_filled_first(self, cache):
        a = addr_for(cache, 0, 1)
        cache.access(a)
        b = addr_for(cache, 0, 2)
        cache.access(b)  # second way, no eviction of a
        hit_a, _ = cache.access(a)
        assert hit_a

    def test_invalidate(self, cache):
        addr = addr_for(cache, 0, 4)
        cache.access(addr, is_write=True)
        assert cache.invalidate(addr)
        hit, _ = cache.access(addr)
        assert not hit
        assert not cache.invalidate(addr_for(cache, 0, 99))

    def test_valid_line_count(self, cache):
        assert cache.valid_line_count() == 0
        cache.access(addr_for(cache, 0, 1))
        cache.access(addr_for(cache, 1, 1))
        assert cache.valid_line_count() == 2

    def test_probe_does_not_touch_lru(self, cache):
        a = addr_for(cache, 1, 10)
        b = addr_for(cache, 1, 11)
        cache.access(a)
        cache.access(b)  # LRU: a
        cache.probe(a)  # must NOT promote a
        c = addr_for(cache, 1, 12)
        cache.access(c)  # evicts a (still LRU)
        hit_a, _ = cache.access(a)
        assert not hit_a


class TestMemoryHierarchy:
    @pytest.fixture()
    def hier(self):
        machine = MachineConfig()
        acct = EnergyAccountant(config=default_power_config())
        return MemoryHierarchy(machine, acct), machine, acct

    def test_l1_hit_latency(self, hier):
        h, machine, _ = hier
        addr = 0x1000
        h.data_access(addr, is_write=False, cycle=0)  # install
        result = h.data_access(addr, is_write=False, cycle=10)
        assert result.l1_hit
        assert result.latency == machine.l1d_latency

    def test_l2_hit_latency(self, hier):
        h, machine, _ = hier
        addr = 0x2000
        h.l2.access(addr)  # preload L2 only
        result = h.data_access(addr, is_write=False, cycle=0)
        assert not result.l1_hit
        assert result.latency == machine.l1d_latency + machine.l2_latency

    def test_memory_latency_on_cold_miss(self, hier):
        h, machine, _ = hier
        result = h.data_access(0x3000, is_write=False, cycle=0)
        assert result.latency == (
            machine.l1d_latency + machine.l2_latency + machine.mem_latency
        )

    def test_inst_fetch_hit_latency(self, hier):
        h, machine, _ = hier
        h.inst_fetch(0x400000, 0)
        assert h.inst_fetch(0x400000, 1) == machine.l1i_latency

    def test_energy_events_recorded(self, hier):
        h, _, acct = hier
        h.data_access(0x5000, is_write=False, cycle=0)
        assert acct.counts["l1d_read"] == 1
        assert acct.counts["l2_access"] == 1
        assert acct.counts["mem_access"] >= 1
        assert acct.counts["l1d_fill"] == 1

    def test_writeback_energy_on_dirty_eviction(self, hier):
        h, machine, acct = hier
        g = machine.l1d_geometry
        # Fill one set's ways with dirty lines, then overflow it.
        base = 0x100 << (g.offset_bits + g.index_bits)
        set_bits = 0
        addrs = [
            ((tag << g.index_bits) | set_bits) << g.offset_bits
            for tag in (1, 2, 3)
        ]
        h.data_access(addrs[0], is_write=True, cycle=0)
        h.data_access(addrs[1], is_write=True, cycle=1)
        h.data_access(addrs[2], is_write=True, cycle=2)
        assert acct.counts["l2_writeback"] >= 1
