"""Tests for the experiment runner and figure machinery (fast, small runs)."""

from __future__ import annotations

import pytest

from repro.cpu.config import MachineConfig
from repro.experiments.figures import table_1, table_2
from repro.experiments.reporting import (
    render_comparison,
    render_interval_table,
    render_machine_table,
    render_settling_table,
    render_table,
)
from repro.experiments.runner import (
    figure_point,
    run_once,
    technique_by_name,
)
from repro.leakctl.base import drowsy_technique, gated_vss_technique

FAST = dict(n_ops=3000, seed=1)


class TestRunOnce:
    def test_baseline_run_completes(self, machine):
        out = run_once("gcc", technique=None, machine=machine, **FAST)
        assert out.stats.committed == 3000
        assert out.stats.cycles > 0
        assert out.standby is None

    def test_technique_run_records_standby(self, machine):
        out = run_once(
            "gcc", technique=drowsy_technique(), machine=machine, **FAST
        )
        assert out.standby is not None
        assert out.standby.total_cycles == out.stats.cycles
        assert out.controlled.standby_population_check()

    def test_warmup_trains_predictor_and_caches(self, machine):
        cold = run_once(
            "gcc", technique=None, machine=machine, n_ops=3000, warmup_ops=0
        )
        warm = run_once(
            "gcc", technique=None, machine=machine, n_ops=3000, warmup_ops=20000
        )
        assert warm.stats.mispredict_rate < cold.stats.mispredict_rate
        assert (
            warm.hierarchy.l1d_stats.miss_rate < cold.hierarchy.l1d_stats.miss_rate
        )

    def test_gated_runs_and_counts_induced(self, machine):
        out = run_once(
            "gcc",
            technique=gated_vss_technique(),
            machine=machine,
            n_ops=6000,
            decay_interval=512,
        )
        assert out.standby.induced_misses > 0

    def test_adaptive_flag_uses_adaptive_cache(self, machine):
        from repro.leakctl.adaptive import AdaptiveControlledCache

        out = run_once(
            "gcc",
            technique=gated_vss_technique(),
            machine=machine,
            adaptive=True,
            **FAST,
        )
        assert isinstance(out.controlled, AdaptiveControlledCache)

    def test_technique_by_name(self):
        assert technique_by_name("drowsy").state_preserving
        assert not technique_by_name("gated").state_preserving
        assert technique_by_name("gated-vss").kind.value == "gated-vss"
        assert technique_by_name("rbb").rbb_bias > 0
        with pytest.raises(KeyError):
            technique_by_name("quantum")


class TestFigurePoint:
    def test_result_fields_coherent(self):
        r = figure_point(
            "perl", drowsy_technique(), l2_latency=5, temp_c=110.0, **FAST
        )
        assert r.benchmark == "perl"
        assert r.technique == "drowsy"
        assert r.l2_latency == 5
        assert r.leak_baseline_j > 0
        assert 0.0 <= r.turnoff_ratio <= 1.0
        assert r.gross_savings_pct >= r.net_savings_pct - 1e-9

    def test_baseline_memoised_across_points(self):
        from repro.experiments import runner

        figure_point("gcc", drowsy_technique(), l2_latency=5, **FAST)
        hits_before = runner._baseline_cached.cache_info().hits
        figure_point("gcc", gated_vss_technique(), l2_latency=5, **FAST)
        assert runner._baseline_cached.cache_info().hits > hits_before

    def test_deterministic(self):
        a = figure_point("twolf", drowsy_technique(), l2_latency=8, **FAST)
        b = figure_point("twolf", drowsy_technique(), l2_latency=8, **FAST)
        assert a.net_savings_pct == b.net_savings_pct
        assert a.technique_cycles == b.technique_cycles

    def test_temperature_affects_energy_not_timing(self):
        hot = figure_point("gap", drowsy_technique(), temp_c=110.0, **FAST)
        cool = figure_point("gap", drowsy_technique(), temp_c=85.0, **FAST)
        assert hot.technique_cycles == cool.technique_cycles
        assert hot.leak_baseline_j > cool.leak_baseline_j

    def test_dvs_hook_scales_leakage_at_stake(self):
        """The DVS extension: a lower supply shrinks the leakage budget
        (DIBL + V*I) that the techniques compete over."""
        nominal = figure_point("gap", gated_vss_technique(), vdd=0.9, **FAST)
        scaled = figure_point("gap", gated_vss_technique(), vdd=0.7, **FAST)
        assert scaled.leak_baseline_j < 0.7 * nominal.leak_baseline_j
        # Timing is unaffected (frequency scaling is not modelled).
        assert scaled.technique_cycles == nominal.technique_cycles


class TestTablesAndReporting:
    def test_table_1_matches_paper(self):
        t = table_1()
        assert t["Low leak mode to high"] == {"drowsy": 3, "gated-vss": 3}
        assert t["High leak to low"] == {"drowsy": 3, "gated-vss": 30}

    def test_table_2_contains_paper_parameters(self):
        t = table_2()
        assert t["Instruction window"] == "80-RUU, 40-LSQ"
        assert "64 KB, 2-way LRU" in t["L1 D-cache"]
        assert "2 MB" in t["L2"]
        assert "100 cycles" == t["Memory"]

    def test_render_table_alignment(self):
        out = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_render_settling_and_machine(self):
        assert "30" in render_settling_table(table_1())
        assert "80-RUU" in render_machine_table(table_2())

    def test_render_interval_table(self):
        text = render_interval_table({"gcc": {"drowsy": 512, "gated-vss": 4096}})
        assert "gcc" in text and "4096" in text

    def test_render_comparison_smoke(self):
        from repro.experiments.figures import comparison_figure

        fig = comparison_figure(
            l2_latency=5,
            temp_c=110.0,
            title="smoke",
            benchmarks=("gcc",),
            n_ops=2000,
        )
        text = render_comparison(fig)
        assert "gcc" in text and "AVERAGE" in text


class TestReplication:
    def test_replicate_summarises_across_seeds(self):
        from repro.experiments.sweeps import replicate

        summary = replicate(
            "gcc", drowsy_technique(), seeds=(1, 2), l2_latency=5,
            n_ops=3000,
        )
        assert summary.n == 2
        assert summary.net_savings_std >= 0.0
        assert summary.technique == "drowsy"

    def test_replicate_needs_seeds(self):
        from repro.experiments.sweeps import replicate

        with pytest.raises(ValueError):
            replicate("gcc", drowsy_technique(), seeds=())

    def test_single_seed_zero_spread(self):
        from repro.experiments.sweeps import replicate

        summary = replicate(
            "gzip", gated_vss_technique(), seeds=(4,), l2_latency=5,
            n_ops=3000,
        )
        assert summary.net_savings_std == 0.0
        assert summary.perf_loss_std == 0.0


class TestOccupancyTelemetry:
    def test_occupancy_trace_records_at_ticks(self, machine):
        from repro.cache.cache import Cache
        from repro.leakctl.controlled import ControlledCache

        ctl = ControlledCache(
            Cache("l1d", machine.l1d_geometry),
            drowsy_technique(),
            decay_interval=512,
        )
        ctl.record_occupancy()
        ctl.advance(5000)
        trace = ctl.occupancy_trace
        assert len(trace) == 5000 // 128  # one sample per global tick
        cycles = [c for c, _ in trace]
        assert cycles == sorted(cycles)
        # Everything idle: the population ramps up and saturates.
        assert trace[-1][1] == machine.l1d_geometry.n_lines

    def test_occupancy_off_by_default(self, machine):
        from repro.cache.cache import Cache
        from repro.leakctl.controlled import ControlledCache

        ctl = ControlledCache(
            Cache("l1d", machine.l1d_geometry),
            drowsy_technique(),
            decay_interval=512,
        )
        ctl.advance(2000)
        assert ctl.occupancy_trace == []
