"""Tests for the live-monitoring metrics registry (``repro.obs.metrics``).

The contract: a process-local Prometheus-style registry — counters,
gauges, histograms, all with optional labels — that snapshots to the
text exposition format and JSON via atomic file replacement, fed by the
scheduler/store helpers without ever touching results.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics as m


@pytest.fixture(autouse=True)
def clean_registry():
    m.reset_registry()
    yield
    m.reset_registry()


class TestCounter:
    def test_unlabelled_counts(self):
        r = m.MetricsRegistry()
        c = r.counter("repro_things_total", "Things")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_independent(self):
        r = m.MetricsRegistry()
        c = r.counter("repro_hits_total", "Hits", ("source",))
        c.inc(source="store")
        c.inc(3, source="batch")
        assert c.value(source="store") == 1
        assert c.value(source="batch") == 3

    def test_negative_increment_rejected(self):
        r = m.MetricsRegistry()
        c = r.counter("repro_things_total", "Things")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_missing_label_rejected(self):
        r = m.MetricsRegistry()
        c = r.counter("repro_hits_total", "Hits", ("source",))
        with pytest.raises(ValueError):
            c.inc()

    def test_unknown_label_rejected(self):
        r = m.MetricsRegistry()
        c = r.counter("repro_hits_total", "Hits", ("source",))
        with pytest.raises(ValueError):
            c.inc(source="store", extra="nope")

    def test_bad_metric_name_rejected(self):
        r = m.MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("bad-name", "nope")


class TestGauge:
    def test_set_inc_dec(self):
        r = m.MetricsRegistry()
        g = r.gauge("repro_in_flight", "In flight")
        g.inc()
        g.inc()
        g.dec()
        assert g.value() == 1
        g.set(7)
        assert g.value() == 7

    def test_set_max_keeps_peak(self):
        r = m.MetricsRegistry()
        g = r.gauge("repro_rss_peak_kb", "Peak RSS")
        g.set_max(100)
        g.set_max(40)
        assert g.value() == 100


class TestHistogram:
    def test_observe_buckets_cumulative(self):
        r = m.MetricsRegistry()
        h = r.histogram(
            "repro_wall_seconds", "Wall", buckets=(0.1, 1.0, 10.0)
        )
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = r.render_prometheus()
        assert 'repro_wall_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wall_seconds_bucket{le="1"} 2' in text
        assert 'repro_wall_seconds_bucket{le="10"} 3' in text
        assert 'repro_wall_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_wall_seconds_count 4" in text
        assert "repro_wall_seconds_sum 55.55" in text


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        r = m.MetricsRegistry()
        assert r.counter("repro_x_total", "X") is r.counter(
            "repro_x_total", "X"
        )

    def test_kind_mismatch_raises(self):
        r = m.MetricsRegistry()
        r.counter("repro_x_total", "X")
        with pytest.raises(ValueError):
            r.gauge("repro_x_total", "X")

    def test_label_mismatch_raises(self):
        r = m.MetricsRegistry()
        r.counter("repro_x_total", "X", ("a",))
        with pytest.raises(ValueError):
            r.counter("repro_x_total", "X", ("b",))

    def test_prometheus_rendering_and_escaping(self):
        r = m.MetricsRegistry()
        c = r.counter("repro_odd_total", "Quote \" and newline", ("k",))
        c.inc(k='va"l\\ue\n')
        text = r.render_prometheus()
        assert "# HELP repro_odd_total" in text
        assert "# TYPE repro_odd_total counter" in text
        assert 'k="va\\"l\\\\ue\\n"' in text

    def test_to_dict_roundtrips_through_json(self):
        r = m.MetricsRegistry()
        r.counter("repro_x_total", "X").inc(2)
        payload = json.loads(json.dumps(r.to_dict()))
        assert payload["schema"] == m.METRICS_SCHEMA_VERSION
        [metric] = [
            e for e in payload["metrics"] if e["name"] == "repro_x_total"
        ]
        assert metric["type"] == "counter"
        assert metric["samples"][0]["value"] == 2

    def test_write_snapshot_creates_both_files(self, tmp_path):
        r = m.MetricsRegistry()
        r.counter("repro_x_total", "X").inc()
        prom, as_json = r.write_snapshot(tmp_path)
        assert prom.name == m.METRICS_PROM_FILENAME
        assert "repro_x_total 1" in prom.read_text()
        payload = json.loads(as_json.read_text())
        assert payload["schema"] == m.METRICS_SCHEMA_VERSION

    def test_snapshot_leaves_no_temp_litter(self, tmp_path):
        r = m.MetricsRegistry()
        r.counter("repro_x_total", "X").inc()
        r.write_snapshot(tmp_path)
        r.write_snapshot(tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestFeedHelpers:
    """The scheduler/store-facing record_* functions on the default registry."""

    def test_run_lifecycle_tracks_in_flight(self):
        m.record_run_started()
        m.record_run_started()
        reg = m.registry()
        assert reg.get("repro_runs_in_flight").value() == 2
        m.record_run_finished(wall_s=0.5, cpu_s=0.4, max_rss_kb=1024.0)
        assert reg.get("repro_runs_in_flight").value() == 1
        assert (
            reg.get("repro_runs_total").value(outcome="finished") == 1
        )
        m.record_run_failed()
        assert reg.get("repro_runs_in_flight").value() == 0
        assert reg.get("repro_runs_total").value(outcome="failed") == 1

    def test_rss_peak_is_monotonic(self):
        m.record_run_started()
        m.record_run_finished(wall_s=0.1, cpu_s=0.1, max_rss_kb=2048.0)
        m.record_run_started()
        m.record_run_finished(wall_s=0.1, cpu_s=0.1, max_rss_kb=512.0)
        reg = m.registry()
        assert reg.get("repro_worker_rss_peak_kb").value() == 2048.0
        assert reg.get("repro_worker_rss_kb").value() == 512.0

    def test_cache_hit_sources(self):
        for source in ("store", "batch", "single-flight", "store"):
            m.record_cache_hit(source)
        c = m.registry().get("repro_cache_hits_total")
        assert c.value(source="store") == 2
        assert c.value(source="single-flight") == 1

    def test_surrogate_points_with_count(self):
        m.record_surrogate_point(served=True, count=10)
        m.record_surrogate_point(served=False, reason="envelope", count=3)
        m.record_surrogate_point(served=True, count=0)  # no-op
        reg = m.registry()
        pts = reg.get("repro_surrogate_points_total")
        assert pts.value(outcome="served") == 10
        assert pts.value(outcome="fallback") == 3
        fb = reg.get("repro_surrogate_fallbacks_total")
        assert fb.value(reason="envelope") == 3

    def test_batch_finished_dispositions(self):
        m.record_batch_finished(jobs=10, cache_hits=6, executed=4, wall_s=1.5)
        reg = m.registry()
        jobs = reg.get("repro_batch_jobs_total")
        assert jobs.value(disposition="submitted") == 10
        assert jobs.value(disposition="cached") == 6
        assert jobs.value(disposition="executed") == 4
        assert reg.get("repro_batches_total").value() == 1

    def test_store_gauges(self):
        m.record_store_index(entries=12, total_bytes=4096, generation=3)
        reg = m.registry()
        assert reg.get("repro_store_entries").value() == 12
        assert reg.get("repro_store_bytes").value() == 4096
        assert reg.get("repro_store_generation").value() == 3

    def test_write_registry_snapshot_swallows_bad_directory(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("not a directory")
        # Must not raise even though mkdir/replace will fail.
        m.write_registry_snapshot(target)

    def test_reset_registry_drops_everything(self):
        m.record_run_started()
        m.reset_registry()
        assert m.registry().get("repro_runs_in_flight") is None
