"""Tests for the parallel execution subsystem (specs and scheduler).

Covers the determinism contract the content-addressed store relies on:
a RunSpec survives pickling across process boundaries and produces
bit-identical results whether executed in-process, in a subprocess, or
through a parallel scheduler.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import fields

import pytest

from repro.exec import ExecutionMetrics, ResultStore, RunSpec, Scheduler
from repro.exec.scheduler import SchedulerError, execute_spec
from repro.leakctl.energy import NetSavingsResult

FAST = dict(l2_latency=5, n_ops=1500)


def assert_results_identical(a: NetSavingsResult, b: NetSavingsResult) -> None:
    for f in fields(NetSavingsResult):
        assert getattr(a, f.name) == getattr(b, f.name), f.name


class TestRunSpec:
    def test_pickle_round_trip(self):
        spec = RunSpec(benchmark="gcc", technique="drowsy", **FAST)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_json_round_trip(self):
        spec = RunSpec(
            benchmark="mcf", technique="gated-vss", temp_c=85.0,
            decay_interval=2048, adaptive=True, seed=7, **FAST,
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"benchmark": "gcc", "technique": "drowsy",
                               "warp_factor": 9})

    def test_validates_enumerated_fields(self):
        with pytest.raises(ValueError, match="technique"):
            RunSpec(benchmark="gcc", technique="quantum")
        with pytest.raises(ValueError, match="policy"):
            RunSpec(benchmark="gcc", technique="drowsy", policy="eager")
        with pytest.raises(ValueError, match="target"):
            RunSpec(benchmark="gcc", technique="drowsy", target="l3")
        with pytest.raises(ValueError, match="engine"):
            RunSpec(benchmark="gcc", technique="drowsy", engine="warp")

    def test_execute_matches_figure_point(self):
        from repro.experiments.runner import figure_point, technique_by_name

        spec = RunSpec(benchmark="gcc", technique="drowsy", **FAST)
        direct = figure_point(
            "gcc", technique_by_name("drowsy"),
            l2_latency=FAST["l2_latency"], n_ops=FAST["n_ops"],
        )
        assert_results_identical(spec.execute(), direct)


class TestCrossProcessDeterminism:
    def test_subprocess_result_identical_to_in_process(self):
        """The same spec, run in a worker process and in-process, yields
        bit-identical NetSavingsResult fields — the property that makes
        parallel campaigns equivalent to serial ones."""
        spec = RunSpec(benchmark="gzip", technique="gated-vss", **FAST)
        local = spec.execute()
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(execute_spec, spec).result(timeout=300)
        assert_results_identical(local, remote)


class TestScheduler:
    def _specs(self):
        return [
            RunSpec(benchmark=b, technique=t, **FAST)
            for b in ("gcc", "gzip")
            for t in ("drowsy", "gated-vss")
        ]

    def test_serial_matches_direct_execution(self):
        specs = self._specs()
        results = Scheduler(max_workers=1).run(specs)
        for spec, result in zip(specs, results):
            assert result.benchmark == spec.benchmark
            assert result.technique == spec.technique

    def test_parallel_matches_serial(self):
        specs = self._specs()
        serial = Scheduler(max_workers=1).run(specs)
        parallel = Scheduler(max_workers=2).run(specs)
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)

    def test_duplicate_specs_executed_once(self, tmp_path):
        spec = RunSpec(benchmark="gcc", technique="drowsy", **FAST)
        store = ResultStore(tmp_path / "store")
        results = Scheduler(max_workers=1, store=store).run([spec, spec, spec])
        assert store.stats.writes == 1
        assert_results_identical(results[0], results[1])
        assert_results_identical(results[0], results[2])

    def test_store_makes_second_batch_all_hits(self, tmp_path):
        specs = self._specs()
        store = ResultStore(tmp_path / "store")
        first = Scheduler(max_workers=1, store=store).run(specs)
        warm_store = ResultStore(tmp_path / "store")
        second = Scheduler(max_workers=1, store=warm_store).run(specs)
        assert warm_store.stats.hit_rate == 1.0
        for a, b in zip(first, second):
            assert_results_identical(a, b)

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        from repro.exec import scheduler as sched_mod

        def broken_pool(*args, **kwargs):
            raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(sched_mod, "ProcessPoolExecutor", broken_pool)
        specs = self._specs()[:2]
        results = Scheduler(max_workers=4).run(specs)
        assert len(results) == 2
        assert results[0].benchmark == specs[0].benchmark

    def test_transient_failure_is_retried(self, monkeypatch):
        from repro.exec import scheduler as sched_mod

        real = sched_mod.execute_spec
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("worker died")
            return real(spec)

        monkeypatch.setattr(sched_mod, "execute_spec", flaky)
        spec = RunSpec(benchmark="gcc", technique="drowsy", **FAST)
        results = Scheduler(max_workers=1, retries=2).run([spec])
        assert results[0].benchmark == "gcc"
        assert calls["n"] == 2

    def test_persistent_failure_raises_scheduler_error(self, monkeypatch):
        from repro.exec import scheduler as sched_mod

        def always_broken(spec):
            raise RuntimeError("deterministic bug")

        monkeypatch.setattr(sched_mod, "execute_spec", always_broken)
        spec = RunSpec(benchmark="gcc", technique="drowsy", **FAST)
        with pytest.raises(SchedulerError, match="failed after 1 retries"):
            Scheduler(max_workers=1, retries=1).run([spec])

    def test_metrics_aggregate_batches(self, tmp_path):
        specs = self._specs()
        store = ResultStore(tmp_path / "store")
        metrics = ExecutionMetrics()
        sched = Scheduler(max_workers=1, store=store, metrics=metrics)
        sched.run(specs)
        sched.run(specs)
        assert metrics.jobs_total == 2 * len(specs)
        assert metrics.jobs_executed == len(specs)
        assert metrics.cache_hits == len(specs)
        assert 0.0 < metrics.hit_rate < 1.0
        payload = metrics.to_dict()
        assert payload["jobs_total"] == 2 * len(specs)
        assert payload["throughput_runs_per_s"] > 0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            Scheduler(max_workers=0)
        with pytest.raises(ValueError):
            Scheduler(retries=-1)
        with pytest.raises(ValueError, match="timeout_s"):
            Scheduler(timeout_s=0)
        with pytest.raises(ValueError, match="timeout_s"):
            Scheduler(timeout_s=-5.0)
        with pytest.raises(ValueError, match="heartbeat_s"):
            Scheduler(heartbeat_s=0)


class TestPoolTimeout:
    def test_hanging_job_is_abandoned_not_retried(self, monkeypatch):
        """A job that outlives the batch budget is abandoned (its pool is
        shut down with cancel_futures) and re-run serially exactly once,
        counted as a timeout — never double-counted as a retry."""
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.exec import scheduler as sched_mod

        specs = [
            RunSpec(benchmark=b, technique="drowsy", **FAST)
            for b in ("gcc", "gzip")
        ]
        victim = specs[0].content_hash()
        # Precompute the results so the monkeypatched entry point returns
        # instantly — only the deliberate hang consumes wall time, which
        # keeps the test deterministic under a loaded machine.
        expected = {s.content_hash(): s.execute() for s in specs}
        release = threading.Event()
        calls: list[str] = []

        def hang_once(spec):
            key = spec.content_hash()
            calls.append(key)
            if key == victim and calls.count(victim) == 1:
                release.wait(timeout=60)
            return expected[key]

        # Threads (not processes) so the monkeypatched entry point is the
        # one the pool actually runs.
        monkeypatch.setattr(sched_mod, "ProcessPoolExecutor", ThreadPoolExecutor)
        monkeypatch.setattr(sched_mod, "execute_spec", hang_once)
        try:
            metrics = ExecutionMetrics()
            sched = Scheduler(max_workers=2, timeout_s=1.0, metrics=metrics)
            results = sched.run(specs)
            assert len(results) == 2
            for got, spec in zip(results, specs):
                assert_results_identical(got, expected[spec.content_hash()])
            assert metrics.timeouts == 1
            assert metrics.retries == 0
            assert metrics.failures == 0
            # Victim ran twice (hung attempt + serial pass), peer once.
            assert calls.count(victim) == 2
            assert calls.count(specs[1].content_hash()) == 1
        finally:
            release.set()

    def test_pool_timeout_metrics_serialised(self):
        metrics = ExecutionMetrics()
        metrics.timeouts += 3
        assert metrics.to_dict()["timeouts"] == 3


class TestCampaignIntegration:
    def test_warm_campaign_rerun_hits_store(self, tmp_path):
        """Acceptance: a second reproduce into the same out dir is served
        almost entirely from the result store."""
        from repro.experiments.campaign import run_campaign

        out = tmp_path / "res"
        cold = run_campaign(out, quick=True, benchmarks=("gcc",))
        assert cold.metrics["jobs_executed"] > 0
        assert (out / "campaign_metrics.json").exists()

        warm = run_campaign(out, quick=True, benchmarks=("gcc",))
        assert warm.metrics["hit_rate"] >= 0.9
        assert warm.metrics["jobs_executed"] == 0
        # Same artefact payloads either way.
        for name, path in warm.artefacts.items():
            if path.suffix == ".txt":
                assert path.read_text() == cold.artefacts[name].read_text()
