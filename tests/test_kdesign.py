"""Tests for dual-k_design derivation (paper Equations 3-8)."""

from __future__ import annotations

import pytest

from repro.circuits.library import inverter, nand2
from repro.leakage.bsim3 import unit_leakage
from repro.leakage.kdesign import (
    KDesign,
    derive_kdesign,
    kdesign_surface,
)
from repro.circuits.netlist import Netlist
from repro.circuits.solver import LeakageSolver
import itertools


class TestDeriveKDesign:
    def test_nand2_factors_in_unit_range(self, node70):
        """Stacking and input averaging keep k_n, k_p below 1."""
        kd = derive_kdesign(nand2(), node70, vdd=0.9, temp_k=300.0)
        assert 0.0 < kd.kn < 1.0
        assert 0.0 < kd.kp < 1.0
        assert kd.n_nmos == 2
        assert kd.n_pmos == 2

    def test_equation3_reconstructs_average_leakage(self, node70):
        """I_cell from Eq. 3 must equal the input-averaged solver leakage.

        This is the defining identity of Equations 5/6: summing the
        combination leakages and normalising, then multiplying back, gives
        the average cell leakage exactly.
        """
        net = nand2()
        kd = derive_kdesign(net, node70, vdd=0.9, temp_k=300.0)
        i_n = unit_leakage(node70, vdd=0.9, temp_k=300.0, pmos=False)
        i_p = unit_leakage(node70, vdd=0.9, temp_k=300.0, pmos=True)
        reconstructed = kd.cell_current(i_n, i_p)

        solver = LeakageSolver(node70, vdd=0.9, temp_k=300.0)
        total = 0.0
        combos = list(itertools.product((0, 1), repeat=2))
        for combo in combos:
            total += solver.leakage_for_inputs(net, dict(zip(net.inputs, combo)))
        average = total / len(combos)
        assert reconstructed == pytest.approx(average, rel=1e-6)

    def test_inverter_factors(self, node70):
        kd = derive_kdesign(inverter(), node70, vdd=0.9, temp_k=300.0)
        # No stacks in an inverter: each device leaks at roughly its sized
        # unit current in the one combination that turns it off, averaged
        # over 2 combinations.  With W/L(n)=1 -> kn ~ 0.5.
        assert kd.kn == pytest.approx(0.5, rel=0.25)

    def test_requires_inputs_and_output(self, node70):
        bare = Netlist(name="bare", inputs=(), output="out")
        with pytest.raises(ValueError, match="inputs"):
            derive_kdesign(bare, node70)
        no_out = Netlist(name="noout", inputs=("a",), output="")
        with pytest.raises(ValueError, match="output"):
            derive_kdesign(no_out, node70)

    def test_kn_nearly_independent_of_vth(self, node70):
        """Paper: k_n and k_p are independent of threshold voltage."""
        kd_base = derive_kdesign(nand2(), node70, vdd=0.9, temp_k=300.0)
        shifted = node70.with_overrides(vth_n=0.24, vth_p=0.26)
        kd_shift = derive_kdesign(nand2(), shifted, vdd=0.9, temp_k=300.0)
        assert kd_shift.kn == pytest.approx(kd_base.kn, rel=0.15)
        assert kd_shift.kp == pytest.approx(kd_base.kp, rel=0.15)


class TestKDesignSurface:
    def test_surface_matches_exact_derivation(self, node70):
        """The linear (T, Vdd) fit tracks the exact enumeration closely —
        the paper's observed linearity of k_n/k_p."""
        surface = kdesign_surface("nand2", "70nm")
        exact = derive_kdesign(nand2(), node70, vdd=0.9, temp_k=350.0)
        fitted = surface.at(350.0, 0.9)
        assert fitted.kn == pytest.approx(exact.kn, rel=0.05)
        assert fitted.kp == pytest.approx(exact.kp, rel=0.05)

    def test_surface_cached(self):
        a = kdesign_surface("nand2", "70nm")
        b = kdesign_surface("nand2", "70nm")
        assert a is b

    def test_unknown_cell_rejected(self):
        with pytest.raises(KeyError, match="unknown cell"):
            kdesign_surface("xor9", "70nm")

    def test_factors_never_negative(self):
        surface = kdesign_surface("inv", "70nm")
        # Extrapolate far out; clamping keeps factors physical.
        assert surface.kn(100.0, 0.2) >= 0.0
        assert surface.kp(500.0, 1.5) >= 0.0

    def test_at_bundles_counts(self):
        surface = kdesign_surface("nand3", "70nm")
        kd = surface.at(300.0, 1.0)
        assert isinstance(kd, KDesign)
        assert kd.n_nmos == 3
        assert kd.n_pmos == 3
