"""Tests for cell and structure leakage models and the HotLeakage facade."""

from __future__ import annotations

import pytest

from repro.leakage.cells import LogicCellModel, SRAMCellModel, logic_cell
from repro.leakage.model import HotLeakage
from repro.leakage.structures import (
    ADDRESS_BITS,
    CacheGeometry,
    CacheLeakageModel,
    L1D_GEOMETRY,
    L2_GEOMETRY,
    RegFileGeometry,
    RegFileLeakageModel,
)
from repro.tech.variation import VariationSpec


class TestCacheGeometry:
    def test_paper_l1d_geometry(self):
        g = L1D_GEOMETRY
        assert g.size_bytes == 64 * 1024
        assert g.assoc == 2
        assert g.line_bytes == 64
        assert g.n_sets == 512
        assert g.n_lines == 1024

    def test_tag_bits(self):
        g = L1D_GEOMETRY
        assert g.tag_bits == ADDRESS_BITS - 9 - 6  # 512 sets, 64 B lines

    def test_l2_geometry(self):
        assert L2_GEOMETRY.n_sets == 16384
        assert L2_GEOMETRY.n_lines == 32768

    def test_data_bits_per_line(self):
        assert L1D_GEOMETRY.data_bits_per_line == 512

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=64 * 1024, assoc=2, line_bytes=48)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, assoc=3, line_bytes=64)

    def test_geometry_hashable_for_model_caching(self):
        assert hash(L1D_GEOMETRY) == hash(
            CacheGeometry(size_bytes=64 * 1024, assoc=2, line_bytes=64)
        )


class TestSRAMCellModel:
    def test_power_equals_vdd_times_current(self, node70):
        cell = SRAMCellModel(node=node70)
        p = cell.power(vdd=0.9, temp_k=300.0)
        i = cell.total_current(vdd=0.9, temp_k=300.0)
        assert p == pytest.approx(0.9 * i)

    def test_gate_leakage_included_at_70nm(self, node70):
        cell = SRAMCellModel(node=node70)
        sub = cell.subthreshold_current(vdd=0.9, temp_k=300.0)
        total = cell.total_current(vdd=0.9, temp_k=300.0)
        assert total > sub

    def test_gate_leakage_absent_at_180nm(self, node180):
        cell = SRAMCellModel(node=node180)
        assert cell.gate_current(vdd=1.8) == 0.0

    def test_variation_raises_mean_leakage(self, node70):
        """Inter-die averaging of a convex function raises the mean."""
        cell = SRAMCellModel(node=node70)
        nominal = cell.subthreshold_current(vdd=0.9, temp_k=300.0)
        varied = cell.subthreshold_current(
            vdd=0.9, temp_k=300.0, variation=VariationSpec(samples=400)
        )
        assert varied > nominal

    def test_kdesign_reconstruction(self, node70):
        """SRAM kn/kp must reproduce the circuit-level retention leakage."""
        from repro.circuits.library import sram6t_leakage
        from repro.leakage.bsim3 import unit_leakage

        cell = SRAMCellModel(node=node70)
        kd = cell.kdesign(vdd=0.9, temp_k=300.0)
        i_n = unit_leakage(node70, vdd=0.9, temp_k=300.0)
        i_p = unit_leakage(node70, vdd=0.9, temp_k=300.0, pmos=True)
        assert kd.cell_current(i_n, i_p) == pytest.approx(
            sram6t_leakage(node70, vdd=0.9, temp_k=300.0), rel=1e-9
        )


class TestLogicCell:
    def test_logic_cell_cached(self, node70):
        assert logic_cell(node70, "inv") is logic_cell(node70, "inv")

    def test_nand3_leaks_more_than_inverter(self, node70):
        inv = logic_cell(node70, "inv").total_current(vdd=0.9, temp_k=300.0)
        nand = logic_cell(node70, "nand3").total_current(vdd=0.9, temp_k=300.0)
        assert nand > inv


class TestCacheLeakageModel:
    @pytest.fixture(scope="class")
    def model(self, node70, hot_temp_k):
        return CacheLeakageModel(
            geometry=L1D_GEOMETRY, node=node70, vdd=0.9, temp_k=hot_temp_k
        )

    def test_total_power_sub_watt_scale(self, model):
        """64 KB of hot low-Vt SRAM at 110 C: high but sub-2 W."""
        assert 0.2 < model.total_power_all_active() < 2.0

    def test_tag_share_in_paper_band(self, model):
        """Paper Section 5.3: tags are 5-10 % of cache leakage."""
        assert 0.05 <= model.tag_share() <= 0.10

    def test_line_power_ordering(self, model):
        lp = model.line_powers(model.drowsy_fraction)
        assert 0 < lp.data_standby < lp.data_active
        assert 0 < lp.tag_standby < lp.tag_active
        assert lp.line_standby < lp.line_active

    def test_gated_standby_below_drowsy_standby(self, model):
        gated = model.line_powers(model.gated_fraction)
        drowsy = model.line_powers(model.drowsy_fraction)
        assert gated.line_standby < drowsy.line_standby / 3.0

    def test_edge_logic_small_but_positive(self, model):
        assert 0.0 < model.edge_logic_power < model.array_power_all_active() / 10

    def test_temperature_scales_power_strongly(self, node70):
        cool = CacheLeakageModel(
            geometry=L1D_GEOMETRY, node=node70, vdd=0.9, temp_k=358.15
        )
        hot = CacheLeakageModel(
            geometry=L1D_GEOMETRY, node=node70, vdd=0.9, temp_k=383.15
        )
        ratio = hot.total_power_all_active() / cool.total_power_all_active()
        assert 1.5 < ratio < 3.5


class TestRegFile:
    def test_more_ports_more_leakage(self, node70):
        small = RegFileLeakageModel(
            geometry=RegFileGeometry(read_ports=2, write_ports=0),
            node=node70,
            vdd=0.9,
            temp_k=300.0,
        )
        big = RegFileLeakageModel(
            geometry=RegFileGeometry(read_ports=8, write_ports=4),
            node=node70,
            vdd=0.9,
            temp_k=300.0,
        )
        assert big.total_power() > small.total_power()

    def test_cell_count(self):
        assert RegFileGeometry(n_regs=80, width_bits=64).n_cells == 5120


class TestHotLeakageFacade:
    def test_default_is_paper_hot_point(self):
        hot = HotLeakage()
        assert hot.node.name == "70nm"
        assert hot.temp_k == pytest.approx(383.15)

    def test_temp_c_and_temp_k_exclusive(self):
        with pytest.raises(ValueError):
            HotLeakage("70nm", temp_c=85.0, temp_k=358.15)

    def test_set_temperature_recomputes(self):
        hot = HotLeakage("70nm", vdd=0.9, temp_c=110.0)
        p_hot = hot.cache_model(L1D_GEOMETRY).total_power_all_active()
        hot.set_temperature(temp_c=85.0)
        p_cool = hot.cache_model(L1D_GEOMETRY).total_power_all_active()
        assert p_cool < p_hot

    def test_set_vdd_recomputes(self):
        hot = HotLeakage("70nm", vdd=0.9, temp_c=110.0)
        p_09 = hot.cache_model(L1D_GEOMETRY).total_power_all_active()
        hot.set_vdd(0.7)
        p_07 = hot.cache_model(L1D_GEOMETRY).total_power_all_active()
        assert p_07 < p_09

    def test_set_temperature_requires_exactly_one_arg(self):
        hot = HotLeakage()
        with pytest.raises(ValueError):
            hot.set_temperature()
        with pytest.raises(ValueError):
            hot.set_temperature(temp_c=85.0, temp_k=358.15)

    def test_invalid_vdd_rejected(self):
        hot = HotLeakage()
        with pytest.raises(ValueError):
            hot.set_vdd(0.0)
        with pytest.raises(ValueError):
            HotLeakage("70nm", vdd=-1.0)

    def test_cache_model_memoised_until_point_changes(self):
        hot = HotLeakage()
        a = hot.cache_model(L1D_GEOMETRY)
        b = hot.cache_model(L1D_GEOMETRY)
        assert a is b
        hot.set_temperature(temp_c=85.0)
        c = hot.cache_model(L1D_GEOMETRY)
        assert c is not a

    def test_unit_leakage_query(self):
        hot = HotLeakage("70nm", vdd=0.9, temp_c=110.0)
        assert hot.unit_leakage() > hot.unit_leakage(pmos=True) > 0.0

    def test_regfile_model(self):
        hot = HotLeakage()
        assert hot.regfile_model().total_power() > 0.0
