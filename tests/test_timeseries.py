"""Tests for ``repro.obs.timeseries`` — the bounded-memory recorder.

The contract: a :class:`Series` is a pure function of its sample stream
(deterministic, diffable), never stores more than ``capacity`` values no
matter how long the run, and downsampling loses resolution but not mass
(sums are conserved exactly; means stay means).  The recorder plumbing —
publish slot, JSONL persistence, rotation, torn-line tolerance — is what
``repro report``/``repro diff`` stand on.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    SERIES_SCHEMA_VERSION,
    TIMESERIES_FILENAME,
    RunRecorder,
    Series,
    TimeseriesLog,
    publish,
    read_timeseries,
    resolve_timeseries_path,
    take_published,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    take_published()  # drain any leftover slot
    yield
    obs.disable()
    obs.reset()
    take_published()


class TestSeries:
    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="kind"):
            Series("x", kind="median")
        with pytest.raises(ValueError, match="capacity"):
            Series("x", capacity=3)
        with pytest.raises(ValueError, match="capacity"):
            Series("x", capacity=0)
        with pytest.raises(ValueError, match="base_window"):
            Series("x", base_window=0)

    def test_below_capacity_stores_raw_samples(self):
        s = Series("x", kind="mean", base_window=8, capacity=4)
        s.append(1.0)
        s.append(3.0)
        assert s.values == [1.0, 3.0]
        assert s.level == 0
        assert s.window == 8
        assert s.n_samples == 2

    def test_mean_downsampling_is_exact(self):
        # 8 samples into capacity 4: one downsampling pass, pairwise means.
        s = Series("x", kind="mean", capacity=4)
        for v in [1.0, 3.0, 5.0, 7.0]:
            s.append(v)
        assert s.level == 1  # the pass runs as capacity is reached
        assert s.values == [2.0, 6.0]
        for v in [9.0, 11.0, 13.0, 15.0]:
            s.append(v)
        # Hitting capacity again triggers a second pass: level 2, each
        # stored value the exact mean of 4 consecutive samples.
        assert s.level == 2
        assert s.values == [4.0, 12.0]
        assert s.n_samples == 8

    def test_sum_downsampling_conserves_mass(self):
        s = Series("x", kind="sum", capacity=8)
        total = 0.0
        for i in range(1000):
            s.append(float(i % 7))
            total += float(i % 7)
        d = s.to_dict()
        recovered = sum(d["values"]) + d.get("tail", 0.0)
        assert recovered == pytest.approx(total, rel=0, abs=1e-9)

    def test_memory_stays_bounded(self):
        s = Series("x", kind="mean", capacity=16)
        for i in range(100_000):
            s.append(float(i))
        assert len(s.values) < 16
        assert s.n_samples == 100_000
        assert s.window == s.base_window << s.level

    def test_deterministic_across_identical_streams(self):
        def build():
            s = Series("x", kind="sum", base_window=4, capacity=32)
            for i in range(10_000):
                s.append(float((i * 2654435761) % 97))
            return s.to_dict()

        assert build() == build()

    def test_partial_tail_serialises(self):
        s = Series("x", kind="mean", capacity=4)
        for v in [1.0, 3.0, 5.0, 7.0]:
            s.append(v)  # level 1 now; accumulator needs 2 samples
        s.append(100.0)
        d = s.to_dict()
        assert d["tail"] == 100.0
        assert d["tail_windows"] == 1
        assert d["n_samples"] == 5

    def test_mean_of_means_matches_global_mean(self):
        # Power-of-two merging keeps every stored value an equal-weight
        # mean, so the mean of values equals the mean of all samples.
        s = Series("x", kind="mean", capacity=8)
        samples = [float((i * 31) % 11) for i in range(4096)]
        for v in samples:
            s.append(v)
        assert sum(s.values) / len(s.values) == pytest.approx(
            sum(samples) / len(samples)
        )

    def test_from_values_roundtrip(self):
        s = Series.from_values("derived", [1.0, 2.0], kind="sum", window=64)
        d = s.to_dict()
        assert d["values"] == [1.0, 2.0]
        assert d["window"] == 64
        assert d["kind"] == "sum"


class TestRunRecorder:
    def test_series_get_or_create(self):
        rec = RunRecorder()
        a = rec.series("cache.frac_live", kind="mean", base_window=1024)
        again = rec.series("cache.frac_live")
        assert a is again
        assert len(rec) == 1
        assert rec.get("cache.frac_live") is a
        assert rec.names() == ["cache.frac_live"]

    def test_capacity_flows_to_series(self):
        rec = RunRecorder(capacity=8)
        assert rec.series("x").capacity == 8

    def test_payload_schema(self):
        rec = RunRecorder()
        rec.series("x", kind="sum").append(1.0)
        payload = rec.to_payload()
        assert payload["schema"] == SERIES_SCHEMA_VERSION
        assert payload["series"][0]["name"] == "x"

    def test_publish_slot_is_drain_once(self):
        rec = RunRecorder()
        publish(rec)
        assert take_published() is rec
        assert take_published() is None


class TestInstrumentedRun:
    def test_run_once_records_physics_series(self):
        """A real simulation with obs enabled fills the cache and cpu
        series; with obs disabled no recorder is created at all."""
        from repro.cpu.config import MachineConfig
        from repro.experiments.runner import run_once, technique_by_name

        technique = technique_by_name("drowsy")
        machine = MachineConfig()
        plain = run_once("gcc", technique=technique, machine=machine, n_ops=1500)
        assert plain.recorder is None

        obs.enable()
        observed = run_once(
            "gcc", technique=technique, machine=machine, n_ops=1500
        )
        obs.disable()
        rec = observed.recorder
        assert rec is not None
        names = set(rec.names())
        assert "cache.frac_live" in names
        assert "cache.induced_misses" in names
        assert "cpu.ipc" in names
        live = rec.get("cache.frac_live")
        assert live.n_samples > 0
        assert all(0.0 <= v <= 1.0 for v in live.values)
        ipc = rec.get("cpu.ipc")
        assert all(v >= 0.0 for v in ipc.values)
        # Both runs simulated the same trace either way.
        assert observed.stats.cycles == plain.stats.cycles
        assert observed.stats.committed == plain.stats.committed


class TestTimeseriesLog:
    def test_roundtrip_and_rotation(self, tmp_path):
        path = tmp_path / TIMESERIES_FILENAME
        rec = RunRecorder()
        rec.series("x", kind="sum").append(2.5)
        log = TimeseriesLog(path)
        log.write("a" * 64, "fig1", rec.to_payload())
        log.close()
        records = list(read_timeseries(path))
        assert len(records) == 1
        assert records[0]["spec"] == "a" * 64
        assert records[0]["phase"] == "fig1"
        assert records[0]["series"][0]["name"] == "x"

        second = TimeseriesLog(path)
        second.write("b" * 64, "fig1", rec.to_payload())
        second.close()
        rotated = tmp_path / (TIMESERIES_FILENAME + ".1")
        assert rotated.is_file()
        assert list(read_timeseries(rotated))[0]["spec"] == "a" * 64
        assert list(read_timeseries(path))[0]["spec"] == "b" * 64

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / TIMESERIES_FILENAME
        log = TimeseriesLog(path)
        log.write("a" * 64, "", RunRecorder().to_payload())
        log.close()
        with path.open("a") as fh:
            fh.write('{"spec": "bbbb", "series": [tor')
        assert [r["spec"] for r in read_timeseries(path)] == ["a" * 64]

    def test_resolve_accepts_dir_and_file(self, tmp_path):
        path = tmp_path / TIMESERIES_FILENAME
        TimeseriesLog(path).close()
        assert resolve_timeseries_path(tmp_path) == path
        assert resolve_timeseries_path(path) == path
        with pytest.raises(FileNotFoundError, match="no timeseries log"):
            resolve_timeseries_path(tmp_path / "nowhere")


class TestEndToEndEmission:
    def test_scheduler_writes_one_line_per_executed_spec(self, tmp_path):
        from repro.exec.scheduler import Scheduler
        from repro.exec.spec import RunSpec
        from repro.experiments.runner import clear_caches

        clear_caches()
        obs.enable(tmp_path / "events.jsonl")
        specs = [
            RunSpec(benchmark="gcc", technique="drowsy", n_ops=1500),
            RunSpec(benchmark="gcc", technique="gated-vss", n_ops=1500),
        ]
        with obs.phase("fig"):
            Scheduler().run(specs)
        obs.disable()
        path = tmp_path / TIMESERIES_FILENAME
        records = list(read_timeseries(path))
        assert {r["spec"] for r in records} == {
            s.content_hash() for s in specs
        }
        assert all(r["phase"] == "fig" for r in records)
        for record in records:
            names = {s["name"] for s in record["series"]}
            assert "cache.frac_live" in names
            assert "leak.total_j" in names
            assert "cpu.ipc" in names
            for series in record["series"]:
                assert len(series["values"]) <= DEFAULT_CAPACITY

    def test_leakage_split_sums_to_total(self, tmp_path):
        from repro.exec.scheduler import Scheduler
        from repro.exec.spec import RunSpec
        from repro.experiments.runner import clear_caches

        clear_caches()
        obs.enable(tmp_path / "events.jsonl")
        # Short decay interval so lines actually reach standby (GIDL and
        # the standby-power terms are zero while every line stays live).
        Scheduler().run(
            [
                RunSpec(
                    benchmark="gcc",
                    technique="rbb",
                    n_ops=4000,
                    decay_interval=512,
                )
            ]
        )
        obs.disable()
        (record,) = read_timeseries(tmp_path / TIMESERIES_FILENAME)
        by_name = {s["name"]: s for s in record["series"]}

        def total(name):
            d = by_name[name]
            return sum(d["values"]) + d.get("tail", 0.0)

        whole = total("leak.total_j")
        assert whole > 0
        # Both decompositions tile the same energy.
        structure = sum(total(n) for n in ("leak.data_j", "leak.tag_j", "leak.edge_j"))
        mechanism = sum(total(n) for n in ("leak.sub_j", "leak.gate_j", "leak.gidl_j"))
        assert structure == pytest.approx(whole, rel=1e-9)
        assert mechanism == pytest.approx(whole, rel=1e-9)
        # RBB is the one technique with a GIDL component.
        assert total("leak.gidl_j") > 0
