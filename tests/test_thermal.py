"""Tests for the thermal RC node and the leakage-thermal fixed point."""

from __future__ import annotations

import math

import pytest

from repro.leakage.model import HotLeakage
from repro.leakage.structures import L1D_GEOMETRY
from repro.thermal.rc import (
    ThermalRC,
    ThermalRunawayError,
    leakage_thermal_equilibrium,
)


class TestThermalRC:
    def test_starts_at_ambient(self):
        rc = ThermalRC(r_th=1.0, c_th=10.0, t_ambient=320.0)
        assert rc.temp_k == 320.0

    def test_constant_power_converges_to_target(self):
        rc = ThermalRC(r_th=2.0, c_th=1.0, t_ambient=300.0)
        for _ in range(100):
            rc.step(10.0, dt_s=rc.time_constant_s)
        assert rc.temp_k == pytest.approx(300.0 + 2.0 * 10.0, rel=1e-6)

    def test_exact_exponential_step(self):
        rc = ThermalRC(r_th=1.0, c_th=1.0, t_ambient=300.0)
        rc.step(50.0, dt_s=1.0)  # one time constant
        expected = 350.0 + (300.0 - 350.0) * math.exp(-1.0)
        assert rc.temp_k == pytest.approx(expected, rel=1e-9)

    def test_cooling_when_power_removed(self):
        rc = ThermalRC(r_th=1.0, c_th=1.0, t_ambient=300.0, temp_k=380.0)
        rc.step(0.0, dt_s=100.0)
        assert rc.temp_k == pytest.approx(300.0, abs=1e-3)

    def test_step_stable_for_huge_dt(self):
        rc = ThermalRC(r_th=0.5, c_th=0.01, t_ambient=300.0)
        rc.step(40.0, dt_s=1e6)
        assert rc.temp_k == pytest.approx(320.0)

    def test_zero_dt_no_change(self):
        rc = ThermalRC(r_th=1.0, c_th=1.0, t_ambient=300.0, temp_k=333.0)
        rc.step(99.0, dt_s=0.0)
        assert rc.temp_k == 333.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ThermalRC(r_th=0.0, c_th=1.0)
        with pytest.raises(ValueError):
            ThermalRC(r_th=1.0, c_th=-2.0)
        rc = ThermalRC(r_th=1.0, c_th=1.0)
        with pytest.raises(ValueError):
            rc.step(1.0, dt_s=-1.0)


class TestLeakageThermalEquilibrium:
    @staticmethod
    def cache_leakage(temp_k: float) -> float:
        hot = HotLeakage("70nm", vdd=0.9, temp_k=temp_k)
        return hot.cache_model(L1D_GEOMETRY).total_power_all_active()

    def test_equilibrium_above_ambient(self):
        rc = ThermalRC(r_th=1.0, c_th=50.0, t_ambient=318.15)
        t_eq = leakage_thermal_equilibrium(
            rc, dynamic_power_w=20.0, leakage_power_fn=self.cache_leakage
        )
        assert t_eq > rc.t_ambient + 15.0
        # At equilibrium the flux balances.
        power = 20.0 + self.cache_leakage(t_eq)
        assert t_eq == pytest.approx(rc.t_ambient + rc.r_th * power, rel=1e-6)

    def test_better_heatsink_runs_cooler(self):
        hot_rc = ThermalRC(r_th=1.5, c_th=50.0)
        cool_rc = ThermalRC(r_th=0.5, c_th=50.0)
        t_hot = leakage_thermal_equilibrium(
            hot_rc, dynamic_power_w=20.0, leakage_power_fn=self.cache_leakage
        )
        t_cool = leakage_thermal_equilibrium(
            cool_rc, dynamic_power_w=20.0, leakage_power_fn=self.cache_leakage
        )
        assert t_cool < t_hot

    def test_zero_power_sits_at_ambient(self):
        rc = ThermalRC(r_th=1.0, c_th=1.0, t_ambient=300.0)
        t_eq = leakage_thermal_equilibrium(
            rc, dynamic_power_w=0.0, leakage_power_fn=lambda t: 0.0
        )
        assert t_eq == pytest.approx(300.0)

    def test_thermal_runaway_detected(self):
        """Exponential leakage + a terrible heat path = no fixed point."""
        rc = ThermalRC(r_th=3.0, c_th=50.0)

        def monster_leakage(temp_k: float) -> float:
            return 40.0 * self.cache_leakage(temp_k)  # a chip full of cache

        with pytest.raises(ThermalRunawayError):
            leakage_thermal_equilibrium(
                rc, dynamic_power_w=40.0, leakage_power_fn=monster_leakage
            )

    def test_leakage_control_lowers_equilibrium(self):
        """Closing the loop: a technique that cuts cache leakage also runs
        the die cooler, which cuts leakage again — compounding savings."""
        rc = ThermalRC(r_th=0.7, c_th=50.0, t_ambient=340.0)

        def controlled(temp_k: float) -> float:
            # 60 % of the cache's leakage reclaimed by decay.
            return 0.4 * self.cache_leakage(temp_k) * 20.0

        def uncontrolled(temp_k: float) -> float:
            return self.cache_leakage(temp_k) * 20.0

        t_ctl = leakage_thermal_equilibrium(
            rc, dynamic_power_w=25.0, leakage_power_fn=controlled
        )
        t_unctl = leakage_thermal_equilibrium(
            rc, dynamic_power_w=25.0, leakage_power_fn=uncontrolled
        )
        assert t_ctl < t_unctl - 2.0
