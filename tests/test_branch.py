"""Tests for the hybrid branch predictor and BTB (paper Table 2)."""

from __future__ import annotations

import random

import pytest

from repro.cpu.branch import BranchTargetBuffer, HybridPredictor


class TestHybridPredictor:
    def test_learns_strongly_biased_branch(self):
        pred = HybridPredictor()
        wrong = 0
        for i in range(500):
            correct = pred.update(0x1000, taken=True)
            if i > 20:
                wrong += not correct
        assert wrong == 0

    def test_learns_never_taken_branch(self):
        pred = HybridPredictor()
        wrong = 0
        for i in range(500):
            correct = pred.update(0x2000, taken=False)
            if i > 20:
                wrong += not correct
        assert wrong == 0

    def test_gag_learns_alternating_pattern(self):
        """T,N,T,N... is invisible to bimod but trivial for global history."""
        pred = HybridPredictor()
        wrong = 0
        for i in range(2000):
            correct = pred.update(0x3000, taken=(i % 2 == 0))
            if i > 200:
                wrong += not correct
        assert wrong / 1800 < 0.02

    def test_random_branch_near_half(self):
        rng = random.Random(42)
        pred = HybridPredictor()
        wrong = 0
        n = 4000
        for i in range(n):
            wrong += not pred.update(0x4000, taken=rng.random() < 0.5)
        assert 0.35 < wrong / n < 0.65

    def test_mixed_population_reasonable(self):
        """A realistic mix of biased and random branches lands well under
        the all-random floor."""
        rng = random.Random(7)
        pred = HybridPredictor()
        biases = [0.97 if rng.random() < 0.8 else 0.5 for _ in range(64)]
        wrong = total = 0
        for it in range(120):
            for j, bias in enumerate(biases):
                correct = pred.update(0x8000 + j * 4, taken=rng.random() < bias)
                if it > 20:
                    total += 1
                    wrong += not correct
        assert wrong / total < 0.20

    def test_stats_track_lookups_and_mispredicts(self):
        pred = HybridPredictor()
        for _ in range(10):
            pred.update(0x100, taken=True)
        assert pred.stats.lookups == 10
        assert 0 <= pred.stats.direction_mispredicts <= 10
        assert pred.stats.mispredict_rate == pytest.approx(
            pred.stats.direction_mispredicts / 10
        )

    def test_predict_is_pure(self):
        pred = HybridPredictor()
        for _ in range(50):
            pred.update(0x500, taken=True)
        before = (list(pred.bimod), list(pred.gag), pred.history)
        pred.predict(0x500)
        after = (list(pred.bimod), list(pred.gag), pred.history)
        assert before == after

    def test_table_sizes_must_be_powers_of_two(self):
        with pytest.raises(ValueError):
            HybridPredictor(bimod_entries=1000)
        with pytest.raises(ValueError):
            HybridPredictor(gag_entries=3000)


class TestBTB:
    def test_lookup_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x1000) is None
        btb.install(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer()
        btb.install(0x1000, 0x2000)
        btb.install(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=4, assoc=2)  # 2 sets
        # Three branches mapping to the same set (set bits of pc>>2).
        pcs = [((tag << 1) << 2) for tag in (1, 2, 3)]  # set 0
        btb.install(pcs[0], 0xA)
        btb.install(pcs[1], 0xB)
        btb.lookup(pcs[0])  # promote first
        btb.install(pcs[2], 0xC)  # evicts second
        assert btb.lookup(pcs[0]) == 0xA
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) == 0xC

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, assoc=3)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=24, assoc=2)
