"""Tests for the paper-claim validator (on synthetic artefact fixtures)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.validate import (
    ValidationError,
    render_validation,
    validate_campaign,
)

BENCHES = ["gcc", "gzip", "mcf"]


def fig_json(dr_net, gv_net, dr_loss, gv_loss, wins, n=3):
    rows = []
    for i in range(n):
        # Per-row numbers only matter through the win count here; give the
        # winning side higher values for `wins` rows.
        gated_net = gv_net + (5.0 if i < wins else -5.0)
        rows.append(
            {
                "benchmark": BENCHES[i % len(BENCHES)],
                "drowsy": {"net_savings_pct": dr_net},
                "gated_vss": {"net_savings_pct": gated_net},
            }
        )
    return {
        "schema_version": 1,
        "kind": "comparison",
        "rows": rows,
        "averages": {
            "drowsy_net_savings_pct": dr_net,
            "gated_net_savings_pct": gv_net,
            "drowsy_perf_loss_pct": dr_loss,
            "gated_perf_loss_pct": gv_loss,
            "gated_win_count": wins,
        },
    }


def interval_json(best):
    return {
        "schema_version": 1,
        "kind": "best_interval",
        "rows": [],
        "table_3": best,
        "averages": {
            "drowsy_net_savings_pct": 45.0,
            "gated_net_savings_pct": 40.0,
            "drowsy_perf_loss_pct": 3.0,
            "gated_perf_loss_pct": 1.5,
        },
    }


@pytest.fixture()
def good_campaign(tmp_path):
    """A synthetic results directory satisfying every paper claim."""
    artefacts = {
        "fig03_04_l2_5": fig_json(38.0, 51.0, 2.0, 1.0, wins=3),
        "fig05_06_l2_8": fig_json(39.0, 47.0, 2.0, 1.5, wins=2),
        "fig07_l2_11_85c": fig_json(34.0, 34.5, 2.0, 2.4, wins=2),
        "fig08_09_l2_11_110c": fig_json(39.0, 43.0, 2.0, 2.2, wins=2),
        "fig10_11_l2_17": fig_json(40.0, 33.0, 2.0, 3.9, wins=1),
        "fig12_13_best_interval": interval_json(
            {
                "gcc": {"drowsy": 1024, "gated_vss": 4096},
                "gzip": {"drowsy": 1024, "gated_vss": 8192},
                "mcf": {"drowsy": 1024, "gated_vss": 1024},
            }
        ),
    }
    for name, payload in artefacts.items():
        (tmp_path / f"{name}.json").write_text(json.dumps(payload))
    return tmp_path


class TestValidateCampaign:
    def test_good_campaign_passes_everything(self, good_campaign):
        claims = validate_campaign(good_campaign)
        assert len(claims) == 8
        failed = [c for c in claims if not c.passed]
        assert failed == []

    def test_missing_artefact_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="missing artefact"):
            validate_campaign(tmp_path)

    def test_corrupt_artefact_raises(self, good_campaign):
        (good_campaign / "fig03_04_l2_5.json").write_text("{nope")
        with pytest.raises(ValidationError, match="unparseable"):
            validate_campaign(good_campaign)

    def test_wrong_crossover_fails_claims(self, good_campaign):
        # Make gated win at the slow L2 too: fig10_11 claim must fail.
        bad = fig_json(33.0, 45.0, 2.5, 1.0, wins=3)
        (good_campaign / "fig10_11_l2_17.json").write_text(json.dumps(bad))
        claims = {c.name: c for c in validate_campaign(good_campaign)}
        assert not claims["fig10_11.drowsy_clearly_superior"].passed
        # The others stay green.
        assert claims["fig3_4.gated_superior"].passed

    def test_broken_interval_order_fails(self, good_campaign):
        bad = interval_json(
            {
                "gcc": {"drowsy": 8192, "gated_vss": 1024},
                "gzip": {"drowsy": 1024, "gated_vss": 2048},
            }
        )
        (good_campaign / "fig12_13_best_interval.json").write_text(
            json.dumps(bad)
        )
        claims = {c.name: c for c in validate_campaign(good_campaign)}
        assert not claims["tab3.interval_structure"].passed

    def test_render_validation_scorecard(self, good_campaign):
        text = render_validation(validate_campaign(good_campaign))
        assert "8/8 claims reproduced" in text
        assert "[PASS]" in text

    def test_render_shows_failures(self, good_campaign):
        bad = fig_json(50.0, 30.0, 1.0, 3.0, wins=0)
        (good_campaign / "fig03_04_l2_5.json").write_text(json.dumps(bad))
        text = render_validation(validate_campaign(good_campaign))
        assert "[FAIL]" in text


class TestBarChart:
    def test_bar_chart_renders_both_metrics(self):
        from repro.experiments.figures import comparison_figure
        from repro.experiments.reporting import render_bar_chart

        fig = comparison_figure(
            l2_latency=5, temp_c=110.0, title="bars",
            benchmarks=("gcc",), n_ops=2000,
        )
        savings = render_bar_chart(fig)
        loss = render_bar_chart(fig, metric="loss", width=20)
        assert "net energy savings" in savings
        assert "performance loss" in loss
        assert "gcc" in savings

    def test_bar_chart_unknown_metric(self):
        from repro.experiments.figures import comparison_figure
        from repro.experiments.reporting import render_bar_chart

        fig = comparison_figure(
            l2_latency=5, temp_c=110.0, title="bars",
            benchmarks=("gcc",), n_ops=1000,
        )
        with pytest.raises(ValueError, match="metric"):
            render_bar_chart(fig, metric="joy")
