"""Shared fixtures for the test suite.

Simulation-bearing tests default to small op counts so the suite stays
fast; the paper-shape checks in ``test_paper_claims.py`` use moderately
larger runs and are the slowest part of the suite.
"""

from __future__ import annotations

import pytest

from repro.cpu.config import MachineConfig
from repro.tech.constants import celsius_to_kelvin
from repro.tech.nodes import get_node


@pytest.fixture(scope="session")
def node70():
    return get_node("70nm")


@pytest.fixture(scope="session")
def node180():
    return get_node("180nm")


@pytest.fixture(scope="session")
def hot_temp_k():
    """The paper's hot operating point (110 C) in kelvin."""
    return celsius_to_kelvin(110.0)


@pytest.fixture(scope="session")
def machine():
    """Table 2's machine with the default 11-cycle L2."""
    return MachineConfig()


@pytest.fixture(autouse=True)
def _clear_experiment_caches():
    """Isolate memoised baselines between tests."""
    from repro.experiments.runner import clear_caches

    clear_caches()
    yield
    clear_caches()
