"""The public API surface: imports, exports, and version."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for pkg in (
            "repro.tech",
            "repro.circuits",
            "repro.leakage",
            "repro.power",
            "repro.cache",
            "repro.cpu",
            "repro.leakctl",
            "repro.workloads",
            "repro.experiments",
            "repro.cli",
        ):
            assert importlib.import_module(pkg) is not None

    def test_subpackage_alls_resolve(self):
        for pkg_name in (
            "repro.tech",
            "repro.circuits",
            "repro.leakage",
            "repro.power",
            "repro.cache",
            "repro.cpu",
            "repro.leakctl",
            "repro.workloads",
            "repro.experiments",
        ):
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.{name}"

    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart must keep working."""
        from repro import (
            HotLeakage,
            L1D_GEOMETRY,
        )

        hot = HotLeakage("70nm", vdd=0.9, temp_c=110)
        dcache = hot.cache_model(L1D_GEOMETRY)
        assert dcache.total_power_all_active() > 0
        assert 0 < dcache.gated_fraction < dcache.drowsy_fraction < 1

    def test_paper_constants_exposed(self):
        assert repro.PAPER_L2_LATENCIES == (5, 8, 11, 17)
        assert repro.PAPER_MACHINE.ruu_size == 80
        assert len(repro.BENCHMARK_NAMES) == 11

    def test_examples_are_importable(self):
        """Examples must at least parse and define main()."""
        import pathlib
        import ast

        examples = pathlib.Path(__file__).parent.parent / "examples"
        files = sorted(examples.glob("*.py"))
        assert len(files) >= 3
        for path in files:
            tree = ast.parse(path.read_text())
            names = {
                node.name
                for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef)
            }
            assert "main" in names, path.name
