"""Tests for the JSON export of experiment results."""

from __future__ import annotations

import json

import pytest

from repro.experiments.export import (
    SCHEMA_VERSION,
    figure_to_dict,
    result_to_dict,
    save_json,
)
from repro.experiments.figures import comparison_figure
from repro.experiments.runner import figure_point
from repro.leakctl.base import drowsy_technique

FAST = dict(n_ops=2000, seed=1)


class TestResultExport:
    def test_result_dict_round_trips_through_json(self):
        r = figure_point("gcc", drowsy_technique(), l2_latency=5, **FAST)
        d = result_to_dict(r)
        restored = json.loads(json.dumps(d))
        assert restored["benchmark"] == "gcc"
        assert restored["technique"] == "drowsy"
        assert restored["l2_latency"] == 5
        assert restored["net_savings_pct"] == pytest.approx(r.net_savings_pct)
        assert restored["turnoff_ratio"] == pytest.approx(r.turnoff_ratio)

    def test_result_dict_keys_stable(self):
        r = figure_point("gcc", drowsy_technique(), l2_latency=5, **FAST)
        d = result_to_dict(r)
        expected = {
            "benchmark", "technique", "decay_interval", "l2_latency",
            "temp_c", "net_savings_pct", "gross_savings_pct",
            "perf_loss_pct", "turnoff_ratio", "baseline_cycles",
            "technique_cycles", "leak_baseline_j", "leak_technique_j",
            "dyn_baseline_j", "dyn_technique_j", "induced_misses",
            "slow_hits", "true_misses", "accesses", "event_time_scale",
            "uncontrolled_power_w", "energy_ratio", "ed2_ratio",
        }
        assert set(d) == expected


class TestFigureExport:
    @pytest.fixture(scope="class")
    def fig(self):
        return comparison_figure(
            l2_latency=5,
            temp_c=110.0,
            title="export smoke",
            benchmarks=("gcc", "gzip"),
            n_ops=2000,
        )

    def test_figure_dict_structure(self, fig):
        d = figure_to_dict(fig)
        assert d["schema_version"] == SCHEMA_VERSION
        assert d["kind"] == "comparison"
        assert len(d["rows"]) == 2
        assert {r["benchmark"] for r in d["rows"]} == {"gcc", "gzip"}
        assert "drowsy_net_savings_pct" in d["averages"]
        assert d["averages"]["gated_win_count"] == fig.gated_win_count

    def test_save_json_writes_valid_file(self, fig, tmp_path):
        path = save_json(figure_to_dict(fig), tmp_path / "fig.json")
        loaded = json.loads(path.read_text())
        assert loaded["kind"] == "comparison"
        assert loaded["l2_latency"] == 5

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "f.json"
        code = main(["figure", "3_4", "--ops", "1000", "--json", str(out_path)])
        assert code == 0
        assert out_path.exists()
        loaded = json.loads(out_path.read_text())
        assert len(loaded["rows"]) == 11


class TestCampaign:
    def test_quick_campaign_produces_all_artefacts(self, tmp_path):
        from repro.experiments.campaign import run_campaign

        messages = []
        result = run_campaign(
            tmp_path, quick=True, benchmarks=("gcc", "gzip"),
            progress=messages.append,
        )
        expected = {
            "tab1_settling", "tab2_machine",
            "fig03_04_l2_5", "fig05_06_l2_8", "fig07_l2_11_85c",
            "fig08_09_l2_11_110c", "fig10_11_l2_17",
            "fig12_13_best_interval", "tab3_best_intervals",
            "campaign_metrics",
        }
        assert set(result.artefacts) == expected
        for path in result.artefacts.values():
            assert path.exists() and path.stat().st_size > 0
        # JSON companions for the figures.
        assert (tmp_path / "fig03_04_l2_5.json").exists()
        assert (tmp_path / "SUMMARY.txt").exists()
        assert any("fig12_13" in m for m in messages)
        assert "fig03_04_l2_5" in result.verdicts

    def test_campaign_summary_mentions_everything(self, tmp_path):
        from repro.experiments.campaign import CampaignResult

        res = CampaignResult(out_dir=tmp_path)
        res.artefacts["x"] = tmp_path / "x.txt"
        res.verdicts["x"] = "drowsy"
        text = res.summary()
        assert "x.txt" in text and "drowsy" in text


class TestSensitivity:
    def test_perturbation_identity(self):
        """Multiplier 1.0 must leave the result unchanged."""
        from repro.experiments.sensitivity import perturbed

        r = figure_point("gcc", drowsy_technique(), l2_latency=5, **FAST)
        same = perturbed(r)
        assert same.net_savings_pct == pytest.approx(r.net_savings_pct)

    def test_worse_residual_lowers_savings(self):
        from repro.experiments.sensitivity import perturbed

        r = figure_point("gcc", drowsy_technique(), l2_latency=5, **FAST)
        worse = perturbed(r, residual_mult=2.0)
        better = perturbed(r, residual_mult=0.5)
        assert worse.net_savings_pct < r.net_savings_pct
        assert better.net_savings_pct > r.net_savings_pct

    def test_verdict_stability_map(self):
        from repro.experiments.sensitivity import (
            SensitivityPoint,
            verdict_stability,
        )

        points = [
            SensitivityPoint("k", 0.5, 10.0, 20.0),
            SensitivityPoint("k", 1.0, 10.0, 20.0),
            SensitivityPoint("k", 2.0, 25.0, 20.0),  # flips
            SensitivityPoint("j", 1.0, 10.0, 20.0),
        ]
        stab = verdict_stability(points)
        assert stab == {"k": False, "j": True}
