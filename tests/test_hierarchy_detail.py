"""Deeper memory-hierarchy tests: controlled L1D paths and energy events."""

from __future__ import annotations

import pytest

from repro.cache.cache import Cache
from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.config import MachineConfig
from repro.leakctl.base import drowsy_technique, gated_vss_technique
from repro.leakctl.controlled import ControlledCache
from repro.power.wattch import EnergyAccountant, default_power_config

INTERVAL = 1024


def build(technique):
    machine = MachineConfig()
    acct = EnergyAccountant(config=default_power_config())
    controlled = ControlledCache(
        Cache("l1d", machine.l1d_geometry),
        technique,
        decay_interval=INTERVAL,
        accountant=acct,
    )
    hier = MemoryHierarchy(machine, acct, l1d=controlled)
    return hier, controlled, acct, machine


class TestControlledHierarchyDrowsy:
    def test_slow_hit_latency_through_hierarchy(self):
        hier, ctl, _, machine = build(drowsy_technique())
        addr = 0x10000
        hier.data_access(addr, is_write=False, cycle=0)  # install
        ctl.advance(3 * INTERVAL)
        r = hier.data_access(addr, is_write=False, cycle=3 * INTERVAL)
        assert r.l1_hit
        assert r.latency == machine.l1d_latency + drowsy_technique().slow_hit_cycles

    def test_true_miss_tag_wake_through_hierarchy(self):
        hier, ctl, _, machine = build(drowsy_technique())
        hier.data_access(0x10000, is_write=False, cycle=0)
        hier.l2.access(0x20000)  # second address resident in L2 only
        ctl.advance(3 * INTERVAL)
        r = hier.data_access(0x20000, is_write=False, cycle=3 * INTERVAL)
        assert not r.l1_hit
        assert r.latency == (
            machine.l1d_latency
            + drowsy_technique().wake_cycles
            + machine.l2_latency
        )


class TestControlledHierarchyGated:
    def test_induced_miss_latency_is_l2_trip(self):
        hier, ctl, _, machine = build(gated_vss_technique())
        addr = 0x30000
        hier.data_access(addr, is_write=False, cycle=0)  # install (L2 now has it)
        ctl.advance(3 * INTERVAL)
        r = hier.data_access(addr, is_write=False, cycle=3 * INTERVAL)
        assert not r.l1_hit
        assert r.induced_miss
        # Induced miss hits in the (inclusive) L2: full L2 trip, no memory.
        assert r.latency == machine.l1d_latency + machine.l2_latency

    def test_decay_writeback_reaches_l2(self):
        hier, ctl, acct, _ = build(gated_vss_technique())
        addr = 0x40000
        hier.data_access(addr, is_write=True, cycle=0)
        before = acct.counts["l2_writeback"]
        ctl.advance(3 * INTERVAL)
        assert acct.counts["l2_writeback"] == before + 1

    def test_gated_dirty_data_survives_via_l2(self):
        """The gated-Vss correctness contract: decayed dirty data must be
        recoverable from L2 (written back at decay, refetched on touch)."""
        hier, ctl, _, _ = build(gated_vss_technique())
        addr = 0x50000
        hier.data_access(addr, is_write=True, cycle=0)
        ctl.advance(3 * INTERVAL)
        r = hier.data_access(addr, is_write=False, cycle=3 * INTERVAL)
        assert r.induced_miss
        # The L2 line exists and is marked dirty from the decay writeback.
        set_idx, _tag, way = hier.l2.probe(addr)
        assert way is not None

    def test_mixed_stream_classification_totals(self):
        hier, ctl, _, _ = build(gated_vss_technique())
        import random

        rng = random.Random(5)
        cycle = 0
        for _ in range(300):
            cycle += rng.randrange(1, 400)
            addr = 0x60000 + rng.randrange(64) * 64
            hier.data_access(addr, is_write=rng.random() < 0.3, cycle=cycle)
        s = ctl.stats
        assert s.accesses == 300
        assert s.hits + s.slow_hits + s.true_misses + s.induced_misses == 300
        assert ctl.standby_population_check()


class TestUncontrolledBaselinePath:
    def test_plain_l1d_used_without_technique(self):
        machine = MachineConfig()
        acct = EnergyAccountant(config=default_power_config())
        hier = MemoryHierarchy(machine, acct)
        assert hier.controlled_l1d is None
        assert hier.plain_l1d is not None
        hier.data_access(0x1234, is_write=False, cycle=0)
        assert hier.l1d_stats.accesses == 1

    def test_l2_writeback_allocates_in_l2(self):
        """A dirty L1 victim whose line is no longer in L2 write-allocates
        there (and may push an L2 victim to memory)."""
        machine = MachineConfig()
        acct = EnergyAccountant(config=default_power_config())
        hier = MemoryHierarchy(machine, acct)
        g = machine.l1d_geometry
        # Three conflicting dirty lines in one L1 set force an eviction.
        addrs = [((tag << g.index_bits) | 5) << g.offset_bits for tag in (1, 2, 3)]
        for i, a in enumerate(addrs):
            hier.data_access(a, is_write=True, cycle=i)
        # Victim write-allocated into L2 even though L2 had replaced it.
        assert acct.counts["l2_writeback"] >= 1
