"""Extension: applying the comparison to the L1 I-cache and the L2.

The paper confines its study to the L1 D-cache, but its own causal story
("the cost of a standby touch is the next level's latency") makes two
predictions the extended simulator can check:

* **L1 I-cache**: induced misses stall the *front end* — nothing hides
  them.  Non-state-preserving control is only safe when the code
  working set's reuse gaps sit far below the decay interval; a program
  whose loop body cycles near the interval (gcc's large code footprint)
  collapses under gated-Vss while drowsy shrugs (3-cycle slow fetches).
* **L2**: the next level is 100-cycle memory, so gated-Vss's induced
  misses are brutally expensive in *time* — but the 2 MB high-Vt L2's
  leakage budget is so large that gated still nets more joules.  The
  honest verdict is the performance column: drowsy delivers nearly the
  savings at a small fraction of the slowdown.
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.reporting import render_table
from repro.experiments.runner import figure_point
from repro.leakctl.base import drowsy_technique, gated_vss_technique

BENCHES = ("gcc", "gzip", "twolf")


def run_target_study():
    rows = []
    data = {}
    for target in ("l1i", "l2"):
        for bench in BENCHES:
            dr = figure_point(
                bench, drowsy_technique(), l2_latency=11, temp_c=110.0,
                target=target,
            )
            gv = figure_point(
                bench, gated_vss_technique(), l2_latency=11, temp_c=110.0,
                target=target,
            )
            data[(target, bench)] = (dr, gv)
            rows.append(
                [
                    target,
                    bench,
                    f"{dr.net_savings_pct:7.1f}",
                    f"{gv.net_savings_pct:7.1f}",
                    f"{dr.perf_loss_pct:6.2f}",
                    f"{gv.perf_loss_pct:6.2f}",
                    f"{dr.ed2_ratio:6.3f}",
                    f"{gv.ed2_ratio:6.3f}",
                ]
            )
    text = "Extension: leakage control on the L1I and the (high-Vt) L2\n"
    text += render_table(
        ["target", "benchmark", "drowsy net %", "gated net %",
         "drowsy loss %", "gated loss %", "drowsy ED^2", "gated ED^2"],
        rows,
    )
    return text, data


def test_other_cache_targets(benchmark, archive):
    text, data = one_shot(benchmark, run_target_study)
    archive("ext_other_caches", text)

    # L1I: drowsy is cheap and effective everywhere...
    for bench in BENCHES:
        dr, _ = data[("l1i", bench)]
        assert dr.net_savings_pct > 20.0, bench
        assert dr.perf_loss_pct < 1.5, bench
    # ...while gated-Vss collapses when code reuse gaps approach the decay
    # interval: gcc's large loop body is the pathological case.
    dr_gcc, gv_gcc = data[("l1i", "gcc")]
    assert gv_gcc.perf_loss_pct > 10.0 * max(dr_gcc.perf_loss_pct, 0.1)
    assert gv_gcc.net_savings_pct < dr_gcc.net_savings_pct

    # L2: both techniques reclaim a lot of the big array's leakage, but
    # the time cost is wildly asymmetric — the next level is memory.
    for bench in BENCHES:
        dr, gv = data[("l2", bench)]
        assert dr.net_savings_pct > 30.0, bench
        assert gv.perf_loss_pct > 2.0 * dr.perf_loss_pct, bench
        assert dr.perf_loss_pct < 3.0, bench
        # Judged by energy-delay^2, the state-preserving technique wins
        # the L2 — the paper's crossover logic, one level down.
        assert dr.ed2_ratio < gv.ed2_ratio, bench
