"""Ablation: decay granularity (paper Section 2.3).

"Most dynamic leakage-control techniques partition a structure into
active and passive portions.  This can be done at various granularities;
most recent work has done this at the granularity of rows."  This
ablation quantifies *why*: ganging multiple sets behind one sleep rail
shrinks the hardware but a bank only sleeps when every line in it is
simultaneously idle — under realistically scattered access streams the
turnoff ratio collapses with bank size, taking the savings with it.

Uses the fast engine: the sweep is wide and only cache/decay state (which
the fast engine computes exactly) matters for the turnoff story.
"""

from __future__ import annotations

import itertools

from conftest import one_shot
from repro.cache.cache import Cache
from repro.cache.hierarchy import MemoryHierarchy
from repro.cpu.config import MachineConfig
from repro.cpu.fastmodel import FastPipeline
from repro.experiments.reporting import render_table
from repro.experiments.runner import _functional_warmup
from repro.leakctl.base import drowsy_technique, gated_vss_technique
from repro.leakctl.controlled import ControlledCache
from repro.power.wattch import EnergyAccountant, default_power_config
from repro.workloads.generator import TraceGenerator

BANK_SIZES = (1, 2, 4, 16, 64)
BENCHES = ("gcc", "gzip", "twolf")


def run_granularity_study():
    machine = MachineConfig()
    rows = []
    turnoff = {}
    for technique in (drowsy_technique(), gated_vss_technique()):
        for banks in BANK_SIZES:
            ratios = []
            penalties = 0
            for bench in BENCHES:
                acct = EnergyAccountant(config=default_power_config())
                ctl = ControlledCache(
                    Cache("l1d", machine.l1d_geometry),
                    technique,
                    decay_interval=4096,
                    accountant=acct,
                    bank_sets=banks,
                )
                hier = MemoryHierarchy(machine, acct, l1d=ctl)
                pipe = FastPipeline(machine, hier, acct)
                stream = TraceGenerator(bench, seed=1).ops(50_000)
                _functional_warmup(
                    hier, pipe, itertools.islice(stream, 30_000), machine
                )
                pipe.run(stream)
                ratios.append(
                    ctl.stats.turnoff_ratio(machine.l1d_geometry.n_lines)
                )
                penalties += ctl.stats.slow_hits + ctl.stats.induced_misses
            mean_ratio = sum(ratios) / len(ratios)
            turnoff[(technique.name, banks)] = mean_ratio
            rows.append(
                [
                    technique.name,
                    str(banks),
                    f"{mean_ratio:6.3f}",
                    str(penalties),
                ]
            )
    text = "Ablation: decay granularity (bank size in sets, avg of 3 benchmarks)\n"
    text += render_table(
        ["technique", "bank sets", "turnoff ratio", "standby penalties"], rows
    )
    return text, turnoff


def test_granularity_ablation(benchmark, archive):
    text, turnoff = one_shot(benchmark, run_granularity_study)
    archive("ablation_granularity", text)

    for tech in ("drowsy", "gated-vss"):
        ratios = [turnoff[(tech, b)] for b in BANK_SIZES]
        # Turnoff falls monotonically with bank size...
        assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:])), tech
        # ...and collapses (not just shrinks) by 16-set banks: the
        # quantified case for row-granularity control.
        assert turnoff[(tech, 16)] < 0.25 * turnoff[(tech, 1)], tech
