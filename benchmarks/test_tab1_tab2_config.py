"""Tables 1 and 2: settling times and machine configuration."""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.figures import table_1, table_2
from repro.experiments.reporting import render_machine_table, render_settling_table


def test_tab1_settling_times(benchmark, archive):
    table = one_shot(benchmark, table_1)
    archive("tab1_settling", render_settling_table(table))
    # Paper Table 1 verbatim.
    assert table["Low leak mode to high"] == {"drowsy": 3, "gated-vss": 3}
    assert table["High leak to low"] == {"drowsy": 3, "gated-vss": 30}


def test_tab2_machine_config(benchmark, archive):
    table = one_shot(benchmark, table_2)
    archive("tab2_machine", render_machine_table(table))
    # Paper Table 2 spot checks.
    assert table["Instruction window"] == "80-RUU, 40-LSQ"
    assert table["Issue width"] == "4 instructions per cycle"
    assert "2 mem ports" in table["Functional units"]
    assert "64 KB, 2-way LRU, 64 B blocks, 2-cycle" in table["L1 D-cache"]
    assert "64 KB, 2-way LRU, 64 B blocks, 1-cycle" in table["L1 I-cache"]
    assert "2 MB, 2-way LRU, 64 B blocks, 11-cycle" in table["L2"]
    assert table["Memory"] == "100 cycles"
    assert "4K bimod" in table["Branch predictor"]
    assert "1K-entry, 2-way" in table["Branch target buffer"]
