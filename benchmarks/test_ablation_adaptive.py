"""Ablation: online feedback-controlled decay vs the fixed default.

Section 5.4 lists three ways to adapt the decay interval; our extension
implements the miss-ratio state machine (Zhou et al. [33] / Velusamy et
al. [31] flavour).  Expectations:

* where the fixed default is far from the benchmark's optimum (mcf wants
  very short intervals), the controller recovers most of the oracle gap;
* where the default is already near-optimal, the controller's transient
  exploration costs at most a few points;
* the controller converges (it stops changing the interval).
"""

from __future__ import annotations

from conftest import one_shot
from repro.cpu.config import MachineConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import figure_point, run_once
from repro.leakctl.base import gated_vss_technique

BENCHES = ("mcf", "gzip", "gcc", "twolf", "crafty")


def run_ablation():
    rows = []
    data = {}
    for bench in BENCHES:
        fixed = figure_point(bench, gated_vss_technique(), l2_latency=11, temp_c=110.0)
        adaptive = figure_point(
            bench, gated_vss_technique(), l2_latency=11, temp_c=110.0, adaptive=True
        )
        data[bench] = (fixed, adaptive)
        rows.append(
            [
                bench,
                f"{fixed.net_savings_pct:6.1f}",
                f"{adaptive.net_savings_pct:6.1f}",
                f"{adaptive.net_savings_pct - fixed.net_savings_pct:+6.1f}",
                f"{fixed.perf_loss_pct:5.2f}",
                f"{adaptive.perf_loss_pct:5.2f}",
            ]
        )
    text = "Ablation: gated-Vss fixed default interval vs online adaptive\n"
    text += render_table(
        ["benchmark", "fixed net %", "adaptive net %", "delta", "fixed loss %",
         "adaptive loss %"],
        rows,
    )
    return text, data


def test_ablation_adaptive(benchmark, archive):
    text, data = one_shot(benchmark, run_ablation)
    archive("ablation_adaptive", text)

    # mcf's optimum is far below the default: adaptation must help it.
    mcf_fixed, mcf_adaptive = data["mcf"]
    assert mcf_adaptive.net_savings_pct > mcf_fixed.net_savings_pct

    # Across the set, the heuristic controller stays within a modest band
    # of the fixed default (transient exploration is not free).
    deltas = [a.net_savings_pct - f.net_savings_pct for f, a in data.values()]
    assert sum(deltas) / len(deltas) > -6.0


def test_adaptive_controller_converges(benchmark):
    def run():
        return run_once(
            "gcc",
            technique=gated_vss_technique(),
            machine=MachineConfig(),
            adaptive=True,
            n_ops=40_000,
        )

    out = one_shot(benchmark, run)
    history = out.controlled.interval_history
    total_cycles = out.stats.cycles
    # No interval changes in the last half of the run: converged.
    late_changes = [c for c, _ in history if c > total_cycles / 2]
    assert not late_changes
