"""Figures 3/4: net savings and performance loss at 110 C, 5-cycle L2.

Paper shape: with a fast on-chip L2, gated-Vss is *almost uniformly
superior* — better net savings for nearly every benchmark AND lower
average performance loss.
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.figures import figure_3_4
from repro.experiments.reporting import render_comparison


def test_fig03_04(benchmark, archive):
    fig = one_shot(benchmark, figure_3_4)
    archive("fig03_04_l2_5", render_comparison(fig))

    n = len(fig.rows)
    assert n == 11
    # Gated-Vss wins on average savings by a clear margin...
    assert fig.avg_gated_savings > fig.avg_drowsy_savings + 3.0
    # ...and for nearly every benchmark individually,
    assert fig.gated_win_count >= n - 1
    # ...while also losing less performance.
    assert fig.avg_gated_loss < fig.avg_drowsy_loss
    # Savings magnitudes in a plausible band.
    assert 20.0 < fig.avg_drowsy_savings < 80.0
    assert 30.0 < fig.avg_gated_savings < 90.0
