#!/usr/bin/env python
"""Core hot-path benchmark harness — thin wrapper over ``repro-paper bench``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_core.py            # full suite
    PYTHONPATH=src python benchmarks/bench_core.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_core.py --check    # gate vs baseline

Writes ``BENCH.json`` (see ``docs/PERFORMANCE.md`` for the schema and the
timing protocol).  The committed reference numbers live in
``benchmarks/bench_baseline.json``.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
