"""Figures 5/6: net savings and performance loss at 110 C, 8-cycle L2.

Paper shape: gated-Vss still superior on average, but drowsy wins a small
number of benchmarks.
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.figures import figure_5_6
from repro.experiments.reporting import render_comparison


def test_fig05_06(benchmark, archive):
    fig = one_shot(benchmark, figure_5_6)
    archive("fig05_06_l2_8", render_comparison(fig))

    n = len(fig.rows)
    assert fig.avg_gated_savings > fig.avg_drowsy_savings
    # Drowsy is superior for a small number of benchmarks (1-4 of 11).
    drowsy_wins = n - fig.gated_win_count
    assert 1 <= drowsy_wins <= 4
