"""Ablations of the paper's design choices (Sections 2.3 and 5.3).

* ``noaccess`` vs ``simple`` decay policy: the paper notes the simple
  policy "loses out in performance... but saves more leakage power".
* Tag decay vs live tags (Section 5.3): live tags reduce drowsy's
  performance loss (no tag wake on misses) but forfeit the 5-10 % of
  leakage residing in the tags, reducing the gross (leakage-only) savings.
* RBB (the technique the paper declined to simulate): GIDL-limited at
  70 nm, it must land clearly below both headline techniques.
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.reporting import render_table
from repro.experiments.runner import figure_point
from repro.leakctl.base import (
    DecayPolicy,
    drowsy_technique,
    gated_vss_technique,
    rbb_technique,
)

BENCHES = ("gcc", "gzip", "twolf")


def run_policy_ablation():
    rows = []
    data = {}
    for bench in BENCHES:
        noaccess = figure_point(
            bench, drowsy_technique(), l2_latency=11, temp_c=110.0,
            policy=DecayPolicy.NOACCESS,
        )
        simple = figure_point(
            bench, drowsy_technique(), l2_latency=11, temp_c=110.0,
            policy=DecayPolicy.SIMPLE,
        )
        data[bench] = (noaccess, simple)
        rows.append(
            [
                bench,
                f"{noaccess.net_savings_pct:6.1f}",
                f"{simple.net_savings_pct:6.1f}",
                f"{noaccess.perf_loss_pct:5.2f}",
                f"{simple.perf_loss_pct:5.2f}",
                f"{noaccess.turnoff_ratio:4.2f}",
                f"{simple.turnoff_ratio:4.2f}",
            ]
        )
    text = "Ablation: drowsy noaccess vs simple policy (110C, L2=11)\n"
    text += render_table(
        ["benchmark", "noaccess net %", "simple net %", "noaccess loss %",
         "simple loss %", "noaccess off", "simple off"],
        rows,
    )
    return text, data


def test_ablation_noaccess_vs_simple(benchmark, archive):
    text, data = one_shot(benchmark, run_policy_ablation)
    archive("ablation_policy", text)
    for bench, (noaccess, simple) in data.items():
        # The simple policy blankets everything: higher turnoff ratio...
        assert simple.turnoff_ratio > noaccess.turnoff_ratio, bench
        # ...at some extra performance loss (paper Section 2.3).
        assert simple.perf_loss_pct > noaccess.perf_loss_pct - 0.2, bench
        assert simple.slow_hits > noaccess.slow_hits, bench


def run_tag_ablation():
    rows = []
    data = {}
    for bench in BENCHES:
        decayed = figure_point(
            bench, drowsy_technique(decay_tags=True), l2_latency=11, temp_c=110.0
        )
        live = figure_point(
            bench, drowsy_technique(decay_tags=False), l2_latency=11, temp_c=110.0
        )
        data[bench] = (decayed, live)
        rows.append(
            [
                bench,
                f"{decayed.gross_savings_pct:6.1f}",
                f"{live.gross_savings_pct:6.1f}",
                f"{decayed.perf_loss_pct:5.2f}",
                f"{live.perf_loss_pct:5.2f}",
            ]
        )
    text = "Ablation: drowsy tags decayed vs live (Section 5.3)\n"
    text += render_table(
        ["benchmark", "decayed gross %", "live gross %", "decayed loss %",
         "live loss %"],
        rows,
    )
    return text, data


def test_ablation_tag_decay(benchmark, archive):
    text, data = one_shot(benchmark, run_tag_ablation)
    archive("ablation_tags", text)
    for bench, (decayed, live) in data.items():
        # Live tags: leakage-only (gross) savings shrink — the tag array
        # can no longer be reclaimed...
        assert live.gross_savings_pct < decayed.gross_savings_pct, bench
        # ...but drowsy stops paying the tag wake on misses.
        assert live.perf_loss_pct < decayed.perf_loss_pct, bench


def run_rbb_comparison():
    rows = []
    data = {}
    for bench in BENCHES:
        results = {
            "drowsy": figure_point(bench, drowsy_technique(), l2_latency=11,
                                   temp_c=110.0),
            "gated-vss": figure_point(bench, gated_vss_technique(), l2_latency=11,
                                      temp_c=110.0),
            "rbb": figure_point(bench, rbb_technique(), l2_latency=11,
                                temp_c=110.0),
        }
        data[bench] = results
        rows.append(
            [bench]
            + [f"{results[t].net_savings_pct:6.1f}" for t in ("drowsy", "gated-vss", "rbb")]
        )
    text = "Extension: RBB vs drowsy vs gated-Vss at 70 nm (110C, L2=11)\n"
    text += render_table(["benchmark", "drowsy net %", "gated net %", "rbb net %"], rows)
    return text, data


def test_rbb_gidl_limited(benchmark, archive):
    text, data = one_shot(benchmark, run_rbb_comparison)
    archive("ablation_rbb", text)
    for bench, results in data.items():
        # GIDL erodes RBB at 70 nm: clearly below both studied techniques —
        # the paper's stated reason for not pursuing RBB.
        assert results["rbb"].net_savings_pct < results["drowsy"].net_savings_pct, bench
        assert results["rbb"].net_savings_pct < results["gated-vss"].net_savings_pct, bench
