"""Figures 12/13 and Table 3: best per-benchmark decay intervals (85 C, L2=11).

Paper shape: "adaptivity primarily benefits gated-Vss, because the best
decay intervals vary so widely"; gated's best intervals spread across a
wide range (2k-64k in the paper), drowsy's cluster at short intervals, and
the oracle intervals improve gated's savings and loss far more than
drowsy's.

This is the most expensive benchmark in the harness: it sweeps the full
decay-interval grid for every benchmark and technique.
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.experiments.figures import figure_7, figure_12_13, table_3
from repro.experiments.reporting import render_best_intervals, render_interval_table


@pytest.fixture(scope="module")
def fig():
    return figure_12_13()


def test_fig12_13_best_interval(benchmark, archive, fig):
    result = one_shot(benchmark, lambda: fig)
    archive("fig12_13_best_interval", render_best_intervals(result))

    # Oracle selection improves both techniques relative to the fixed
    # default (Figure 7 is the same design point with the fixed interval).
    fixed = figure_7()
    drowsy_gain = result.avg_drowsy_savings - fixed.avg_drowsy_savings
    gated_gain = result.avg_gated_savings - fixed.avg_gated_savings
    assert drowsy_gain > 0.0
    assert gated_gain > 0.0

    # The paper's loss claim for gated-Vss: adaptivity "dramatically
    # reduces performance loss" (1.4 % -> 0.55 % in the paper).  Gated's
    # oracle picks longer intervals that suppress induced misses, so its
    # average loss must drop; drowsy's oracle trades the other way
    # (shorter intervals, more — cheap — slow hits).
    assert result.avg_gated_loss < fixed.avg_gated_loss
    assert result.avg_drowsy_loss >= fixed.avg_drowsy_loss - 0.2

    # Known deviation (EXPERIMENTS.md #6): in our compressed runs the
    # oracle *savings* gain for drowsy exceeds the paper's +4 %, because
    # shortening the interval still buys real standby time at this scale.
    # The structural claims above and the Table-3 checks below are the
    # asserted reproduction targets.


def test_tab3_best_intervals(benchmark, archive, fig):
    table = one_shot(benchmark, lambda: table_3(fig))
    archive("tab3_best_intervals", render_interval_table(table))

    drowsy_best = [v["drowsy"] for v in table.values()]
    gated_best = [v["gated-vss"] for v in table.values()]

    # Table 3's structure: for every benchmark the gated-Vss best interval
    # is at least the drowsy one (gated penalties are costly, drowsy's are
    # cheap), and gated's optima spread over a wider range.
    for bench, vals in table.items():
        assert vals["gated-vss"] >= vals["drowsy"], bench
    assert max(gated_best) / min(gated_best) > max(drowsy_best) / min(drowsy_best)
    # Drowsy favours short intervals across the board.
    assert max(drowsy_best) <= 2048
    # Gated's optima reach well beyond drowsy's range.
    assert max(gated_best) >= 8192
