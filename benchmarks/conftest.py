"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables or figures, asserts
its headline shape, prints the rendered table, and archives it under
``benchmarks/results/``.  Figure regeneration involves full simulation
runs, so each benchmark executes exactly one round.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def archive(results_dir):
    """Print a rendered artefact and save it under benchmarks/results/."""

    def _archive(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _archive


def one_shot(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
