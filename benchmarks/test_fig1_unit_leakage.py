"""Figure 1: unit leakage — architectural model vs transistor-level solver.

The paper's Figure 1 compares the Equation-2 model against transistor-level
simulation across four axes: (a) W/L, (b) Vdd, (c) temperature, (d) Vth.
Our reference "simulation" is the EKV-style DC solver on a single-device
netlist (the stand-in for the paper's Cadence runs).  The paper reports a
near-perfect match on (a)-(c) and a deviation at high Vth in (d) — the
same character these checks assert.
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.circuits.netlist import GND_NODE, VDD_NODE, Netlist, Transistor
from repro.circuits.solver import LeakageSolver
from repro.experiments.reporting import render_table
from repro.leakage.bsim3 import unit_leakage
from repro.tech.nodes import get_node

NODE = get_node("70nm")


def solver_single_device(
    *, vdd: float, temp_k: float, w_over_l: float = 1.0, vth_shift: float = 0.0
) -> float:
    net = Netlist(name="single", inputs=("g",), output="")
    net.add(
        Transistor(
            "m1",
            "n",
            gate="g",
            drain=VDD_NODE,
            source=GND_NODE,
            w_over_l=w_over_l,
            vth_shift=vth_shift,
        )
    )
    solver = LeakageSolver(NODE, vdd=vdd, temp_k=temp_k)
    return solver.solve(net, {"g": 0}).ground_current


def _sweep(axis, points, model_fn, sim_fn):
    rows = []
    models = []
    sims = []
    for p, label in points:
        model = model_fn(p)
        sim = sim_fn(p)
        err = abs(model - sim) / max(sim, 1e-30)
        rows.append([axis, label, f"{model:.3e}", f"{sim:.3e}", f"{err:5.1%}"])
        models.append(model)
        sims.append(sim)
    return rows, models, sims


def _trend_ratios(values):
    return [b / a for a, b in zip(values, values[1:])]


def generate_figure_1():
    all_rows = []
    trends = {}

    rows, m, s = _sweep(
        "(a) W/L",
        [(w, f"{w:g}") for w in (0.5, 1.0, 2.0, 4.0, 8.0)],
        lambda w: unit_leakage(NODE, vdd=0.9, temp_k=300.0, w_over_l=w),
        lambda w: solver_single_device(vdd=0.9, temp_k=300.0, w_over_l=w),
    )
    all_rows += rows
    trends["w_over_l"] = (_trend_ratios(m), _trend_ratios(s))

    rows, m, s = _sweep(
        "(b) Vdd",
        [(v, f"{v:g} V") for v in (0.5, 0.7, 0.9, 1.0)],
        lambda v: unit_leakage(NODE, vdd=v, temp_k=300.0),
        lambda v: solver_single_device(vdd=v, temp_k=300.0),
    )
    all_rows += rows
    trends["vdd"] = (_trend_ratios(m), _trend_ratios(s))

    rows, m, s = _sweep(
        "(c) T",
        [(t, f"{t:.0f} K") for t in (300.0, 330.0, 358.15, 383.15)],
        lambda t: unit_leakage(NODE, vdd=0.9, temp_k=t),
        lambda t: solver_single_device(vdd=0.9, temp_k=t),
    )
    all_rows += rows
    trends["temp"] = (_trend_ratios(m), _trend_ratios(s))

    rows, m, s = _sweep(
        "(d) Vth",
        [(v, f"+{v:g} V") for v in (0.0, 0.05, 0.10, 0.20, 0.35)],
        lambda v: unit_leakage(NODE, vdd=0.9, temp_k=300.0, vth_shift=v),
        lambda v: solver_single_device(vdd=0.9, temp_k=300.0, vth_shift=v),
    )
    all_rows += rows
    trends["vth"] = (_trend_ratios(m), _trend_ratios(s))

    text = "Figure 1: unit leakage, Equation-2 model vs transistor-level solver\n"
    text += render_table(
        ["axis", "point", "model (A)", "solver (A)", "rel err"], all_rows
    )
    return text, trends


def test_fig1_unit_leakage(benchmark, archive):
    text, trends = one_shot(benchmark, generate_figure_1)
    archive("fig1_unit_leakage", text)
    # The model must track the transistor-level reference's *trends* on
    # every axis (the paper's Figure-1 "match"); point-wise offsets of a
    # few tens of percent at shallow subthreshold depth are expected from
    # the smooth EKV interpolation of the reference device.
    for axis in ("w_over_l", "vdd", "temp", "vth"):
        model_trend, sim_trend = trends[axis]
        for mr, sr in zip(model_trend, sim_trend):
            assert mr == pytest.approx(sr, rel=0.45), axis

    # W/L is exactly linear in both (Figure 1a's perfect overlay).
    model_trend, sim_trend = trends["w_over_l"]
    for mr, sr in zip(model_trend, sim_trend):
        assert mr == pytest.approx(sr, rel=1e-6)
