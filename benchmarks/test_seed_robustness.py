"""Robustness: the headline verdicts across independent trace seeds.

The synthetic benchmarks are stochastic; a reproduction result that held
for exactly one random stream would be worthless.  This benchmark
replicates the two decisive design points over several seeds and asserts
the verdicts on the cross-seed means.
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.reporting import render_table
from repro.experiments.sweeps import replicate
from repro.leakctl.base import drowsy_technique, gated_vss_technique

SEEDS = (1, 2, 3)
BENCHES = ("gcc", "gzip", "twolf")


def run_replications():
    rows = []
    means = {}
    for l2 in (5, 17):
        dr_means = []
        gv_means = []
        for bench in BENCHES:
            dr = replicate(bench, drowsy_technique(), seeds=SEEDS, l2_latency=l2)
            gv = replicate(
                bench, gated_vss_technique(), seeds=SEEDS, l2_latency=l2
            )
            dr_means.append(dr.net_savings_mean)
            gv_means.append(gv.net_savings_mean)
            rows.append(
                [
                    f"{l2}",
                    bench,
                    f"{dr.net_savings_mean:5.1f} ± {dr.net_savings_std:4.1f}",
                    f"{gv.net_savings_mean:5.1f} ± {gv.net_savings_std:4.1f}",
                ]
            )
        means[l2] = (
            sum(dr_means) / len(dr_means),
            sum(gv_means) / len(gv_means),
        )
    text = f"Seed robustness: net savings over seeds {SEEDS}\n"
    text += render_table(
        ["L2", "benchmark", "drowsy net % (mean ± std)",
         "gated net % (mean ± std)"],
        rows,
    )
    return text, means


def test_verdicts_robust_across_seeds(benchmark, archive):
    text, means = one_shot(benchmark, run_replications)
    archive("seed_robustness", text)

    dr5, gv5 = means[5]
    dr17, gv17 = means[17]
    # Fast L2: gated wins on the cross-seed mean.
    assert gv5 > dr5
    # Slow L2: drowsy wins on the cross-seed mean.
    assert dr17 > gv17
