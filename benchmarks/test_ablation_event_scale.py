"""Ablation: sensitivity of the headline verdicts to EVENT_TIME_SCALE.

The net-savings metric deflates event-based dynamic overheads by the
dead-time compression factor (default 5; see repro/leakctl/energy.py).
This ablation re-evaluates the same runs under different factors — the
results are dataclass fields, so no re-simulation is needed — and checks
how the paper's verdicts depend on the correction:

* the 17-cycle verdict (drowsy clearly superior) must hold at *every*
  factor, including 1 (no correction): the crossover is not an artifact
  of the correction;
* the 5-cycle verdict (gated superior) must hold from a factor of ~2.5
  up: it needs the event-rate inflation to be at least partly corrected,
  which is exactly what the correction is for.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import one_shot
from repro.experiments.reporting import render_table
from repro.experiments.runner import figure_point
from repro.leakctl.base import drowsy_technique, gated_vss_technique

BENCHES = ("gcc", "gzip", "twolf", "perl", "crafty")
SCALES = (1.0, 2.5, 5.0, 10.0)


def run_sensitivity():
    raw = {}
    for l2 in (5, 17):
        for bench in BENCHES:
            raw[(l2, bench, "dr")] = figure_point(
                bench, drowsy_technique(), l2_latency=l2, temp_c=110.0
            )
            raw[(l2, bench, "gv")] = figure_point(
                bench, gated_vss_technique(), l2_latency=l2, temp_c=110.0
            )

    rows = []
    verdicts = {}
    for l2 in (5, 17):
        for scale in SCALES:
            dr = sum(
                replace(raw[(l2, b, "dr")], event_time_scale=scale).net_savings_pct
                for b in BENCHES
            ) / len(BENCHES)
            gv = sum(
                replace(raw[(l2, b, "gv")], event_time_scale=scale).net_savings_pct
                for b in BENCHES
            ) / len(BENCHES)
            winner = "gated-vss" if gv > dr else "drowsy"
            verdicts[(l2, scale)] = winner
            rows.append(
                [f"{l2}", f"{scale:g}", f"{dr:6.1f}", f"{gv:6.1f}", winner]
            )
    text = "Ablation: EVENT_TIME_SCALE sensitivity (avg of 5 benchmarks)\n"
    text += render_table(
        ["L2", "scale", "drowsy net %", "gated net %", "winner"], rows
    )
    return text, verdicts


def test_event_scale_sensitivity(benchmark, archive):
    text, verdicts = one_shot(benchmark, run_sensitivity)
    archive("ablation_event_scale", text)

    # Slow L2: drowsy wins regardless of the correction.
    for scale in SCALES:
        assert verdicts[(17, scale)] == "drowsy", scale
    # Fast L2: gated wins once the event-rate inflation is corrected.
    for scale in (2.5, 5.0, 10.0):
        assert verdicts[(5, scale)] == "gated-vss", scale
