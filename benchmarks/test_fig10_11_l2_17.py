"""Figures 10/11: net savings and performance loss at 110 C, 17-cycle L2.

Paper shape: with a slow L2, gated-Vss can no longer hide the induced-miss
latency and "drowsy cache becomes clearly superior".
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.figures import figure_10_11
from repro.experiments.reporting import render_comparison


def test_fig10_11(benchmark, archive):
    fig = one_shot(benchmark, figure_10_11)
    archive("fig10_11_l2_17", render_comparison(fig))

    n = len(fig.rows)
    # Drowsy clearly superior on average...
    assert fig.avg_drowsy_savings > fig.avg_gated_savings + 3.0
    # ...winning a clear majority of benchmarks...
    assert fig.gated_win_count <= n // 2
    # ...and gated's performance loss now exceeds drowsy's.
    assert fig.avg_gated_loss > fig.avg_drowsy_loss
