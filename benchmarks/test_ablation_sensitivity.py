"""Ablation: one-at-a-time sensitivity of the verdicts to model knobs.

Perturbs the three load-bearing modelling assumptions — the standby
residual fractions (device physics), the uncontrolled-structure leakage
charged to runtime, and the event-time-scale correction — by 4x in both
directions and checks which design-point verdicts survive.

Expected: the 5-cycle gated win is robust to the physical knobs and only
yields if the event-rate correction is mostly removed (already covered by
the event-scale ablation); the 17-cycle drowsy win is robust to the
runtime/event knobs and only yields if drowsy's standby residual were ~4x
worse than the device model says.
"""

from __future__ import annotations

from conftest import one_shot
from repro.experiments.reporting import render_table
from repro.experiments.sensitivity import sensitivity_sweep, verdict_stability

BENCH = "gcc"


def run_sensitivity():
    rows = []
    stability = {}
    for l2 in (5, 17):
        points = sensitivity_sweep(BENCH, l2_latency=l2)
        stability[l2] = verdict_stability(points)
        for p in points:
            rows.append(
                [
                    str(l2),
                    p.knob,
                    f"x{p.multiplier:g}",
                    f"{p.drowsy_net_pct:6.1f}",
                    f"{p.gated_net_pct:6.1f}",
                    p.winner,
                ]
            )
    text = f"Ablation: model-knob sensitivity on {BENCH}\n"
    text += render_table(
        ["L2", "knob", "mult", "drowsy net %", "gated net %", "winner"], rows
    )
    return text, stability


def test_sensitivity_ablation(benchmark, archive):
    text, stability = one_shot(benchmark, run_sensitivity)
    archive("ablation_sensitivity", text)

    # 5-cycle gated win: robust to the physical knobs over a 16x range.
    assert stability[5]["standby_residual"]
    assert stability[5]["uncontrolled_power"]
    # 17-cycle drowsy win: robust to the accounting knobs.
    assert stability[17]["event_time_scale"]
    assert stability[17]["uncontrolled_power"]
