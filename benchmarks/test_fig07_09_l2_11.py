"""Figures 7, 8 and 9: the 11-cycle L2 design point at both temperatures.

* Figure 8/9 (110 C): the "less clear" point — gated slightly better in
  average savings, slightly worse in average performance loss, with each
  technique winning about half the benchmarks.
* Figure 7 (85 C): same configuration cooler — savings drop for both
  (leakage is exponential in temperature), relative ranking roughly
  unchanged.
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.experiments.figures import figure_7, figure_8_9
from repro.experiments.reporting import render_comparison


@pytest.fixture(scope="module")
def fig_110():
    return figure_8_9()


def test_fig08_09_110c(benchmark, archive, fig_110):
    fig = one_shot(benchmark, lambda: fig_110)
    archive("fig08_09_l2_11_110c", render_comparison(fig))

    n = len(fig.rows)
    # Gated slightly better in average savings...
    assert fig.avg_gated_savings > fig.avg_drowsy_savings - 1.0
    assert fig.avg_gated_savings < fig.avg_drowsy_savings + 15.0
    # ...slightly worse in average performance loss...
    assert fig.avg_gated_loss > fig.avg_drowsy_loss - 0.3
    # ...and the per-benchmark verdicts are split roughly evenly.
    assert 3 <= fig.gated_win_count <= 8


def test_fig07_85c(benchmark, archive, fig_110):
    fig85 = one_shot(benchmark, figure_7)
    archive("fig07_l2_11_85c", render_comparison(fig85))

    # Cooler silicon leaks less: both techniques save less at 85 C.
    assert fig85.avg_drowsy_savings < fig_110.avg_drowsy_savings
    assert fig85.avg_gated_savings < fig_110.avg_gated_savings
    # Temperature has little impact on the *relative* verdict (Sec. 5.2).
    gap_85 = fig85.avg_gated_savings - fig85.avg_drowsy_savings
    gap_110 = fig_110.avg_gated_savings - fig_110.avg_drowsy_savings
    assert abs(gap_85 - gap_110) < 12.0
